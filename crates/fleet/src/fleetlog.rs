//! The coordinator's own write-ahead journal ("fleetlog").
//!
//! The shard journals make each *shard* kill -9-safe; this log makes the
//! *coordinator* recoverable: every placement decision is journaled via
//! the same fsync'd writer ([`corun_serve::Journal`]) the shards use, so
//! `corun fleet --recover` rebuilds the router books after a coordinator
//! crash with nothing lost and nothing double-dispatched.
//!
//! The exactly-once trick is the `intent` record: it is written *before*
//! the submit RPC leaves the coordinator. A crash between the RPC and
//! its `confirm` leaves an intent-without-confirm in the log, which
//! recovery maps to the in-doubt state — the job is then re-submitted
//! under its idempotent key *to the same shard*, where the shard-side
//! dedup (journaled in its own `accept` records) returns the original id
//! instead of running a second copy.

use corun_serve::json::{obj, Json};
use corun_serve::Journal;
use corun_verify::{Code, Diagnostic, Report, Severity};
use std::io;
use std::path::Path;

/// Fleetlog format revision, checked on recovery.
pub const FLEETLOG_FORMAT_VERSION: u32 = 1;

/// One coordinator decision, journaled before its effects are
/// observable.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetRecord {
    /// Header: format version and fleet shape.
    Meta {
        /// Format revision.
        version: u32,
        /// Shard count the books are indexed by.
        shards: usize,
        /// The cluster power cap, watts.
        cluster_cap_w: f64,
    },
    /// A job entered the fleet under an idempotent key.
    Admit {
        /// Fleet job id (dense, admission order).
        id: usize,
        /// Idempotent submit key (doubles as the shard-side job name).
        key: String,
        /// Single-job spec fragment to resubmit from.
        spec: String,
    },
    /// About to submit `id` to `shard` — written *before* the RPC.
    Intent {
        /// Fleet job id.
        id: usize,
        /// Destination shard.
        shard: usize,
    },
    /// The shard accepted `id` as its `local_id`.
    Confirm {
        /// Fleet job id.
        id: usize,
        /// Accepting shard.
        shard: usize,
        /// Shard-local job id.
        local_id: usize,
    },
    /// The submission certainly did not land; the job returned to the
    /// backlog.
    Abort {
        /// Fleet job id.
        id: usize,
    },
    /// Terminal: completed.
    Done {
        /// Fleet job id.
        id: usize,
    },
    /// Terminal: dead-lettered.
    Dead {
        /// Fleet job id.
        id: usize,
    },
    /// Terminal: rejected.
    Rejected {
        /// Fleet job id.
        id: usize,
    },
    /// A submitted job was re-placed off a journal-less incarnation.
    Requeue {
        /// Fleet job id.
        id: usize,
    },
    /// The per-shard cap budget after a rebalance, watts.
    Caps {
        /// Booked cap per shard.
        caps_w: Vec<f64>,
    },
    /// A coordinator recovery completed from this log.
    Recovered,
}

impl FleetRecord {
    /// Render as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let j = match self {
            FleetRecord::Meta {
                version,
                shards,
                cluster_cap_w,
            } => obj(vec![
                ("t", Json::Str("meta".into())),
                ("v", Json::Num(f64::from(*version))),
                ("shards", Json::Num(*shards as f64)),
                ("cluster_cap_w", Json::Num(*cluster_cap_w)),
            ]),
            FleetRecord::Admit { id, key, spec } => obj(vec![
                ("t", Json::Str("admit".into())),
                ("id", Json::Num(*id as f64)),
                ("key", Json::Str(key.clone())),
                ("spec", Json::Str(spec.clone())),
            ]),
            FleetRecord::Intent { id, shard } => obj(vec![
                ("t", Json::Str("intent".into())),
                ("id", Json::Num(*id as f64)),
                ("shard", Json::Num(*shard as f64)),
            ]),
            FleetRecord::Confirm {
                id,
                shard,
                local_id,
            } => obj(vec![
                ("t", Json::Str("confirm".into())),
                ("id", Json::Num(*id as f64)),
                ("shard", Json::Num(*shard as f64)),
                ("local", Json::Num(*local_id as f64)),
            ]),
            FleetRecord::Abort { id } => obj(vec![
                ("t", Json::Str("abort".into())),
                ("id", Json::Num(*id as f64)),
            ]),
            FleetRecord::Done { id } => obj(vec![
                ("t", Json::Str("done".into())),
                ("id", Json::Num(*id as f64)),
            ]),
            FleetRecord::Dead { id } => obj(vec![
                ("t", Json::Str("dead".into())),
                ("id", Json::Num(*id as f64)),
            ]),
            FleetRecord::Rejected { id } => obj(vec![
                ("t", Json::Str("rejected".into())),
                ("id", Json::Num(*id as f64)),
            ]),
            FleetRecord::Requeue { id } => obj(vec![
                ("t", Json::Str("requeue".into())),
                ("id", Json::Num(*id as f64)),
            ]),
            FleetRecord::Caps { caps_w } => obj(vec![
                ("t", Json::Str("caps".into())),
                (
                    "caps_w",
                    Json::Arr(caps_w.iter().map(|&c| Json::Num(c)).collect()),
                ),
            ]),
            FleetRecord::Recovered => obj(vec![("t", Json::Str("recovered".into()))]),
        };
        j.render()
    }

    /// Parse one line. `Ok(None)` skips an unknown-but-wellformed record
    /// type (forward compatibility); `Err` is a malformed record.
    pub fn from_json(line: &str) -> Result<Option<FleetRecord>, String> {
        let j = Json::parse(line.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
        let Some(t) = j.get("t").and_then(Json::as_str) else {
            return Err("missing string field `t`".into());
        };
        let id = || {
            j.get("id")
                .and_then(Json::as_index)
                .ok_or_else(|| format!("`{t}` record missing numeric `id`"))
        };
        Ok(Some(match t {
            "meta" => FleetRecord::Meta {
                version: j.get("v").and_then(Json::as_index).unwrap_or(0) as u32,
                shards: j
                    .get("shards")
                    .and_then(Json::as_index)
                    .ok_or("`meta` record missing `shards`")?,
                cluster_cap_w: j
                    .get("cluster_cap_w")
                    .and_then(Json::as_f64)
                    .ok_or("`meta` record missing `cluster_cap_w`")?,
            },
            "admit" => FleetRecord::Admit {
                id: id()?,
                key: j
                    .get("key")
                    .and_then(Json::as_str)
                    .ok_or("`admit` record missing `key`")?
                    .to_string(),
                spec: j
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or("`admit` record missing `spec`")?
                    .to_string(),
            },
            "intent" => FleetRecord::Intent {
                id: id()?,
                shard: j
                    .get("shard")
                    .and_then(Json::as_index)
                    .ok_or("`intent` record missing `shard`")?,
            },
            "confirm" => FleetRecord::Confirm {
                id: id()?,
                shard: j
                    .get("shard")
                    .and_then(Json::as_index)
                    .ok_or("`confirm` record missing `shard`")?,
                local_id: j
                    .get("local")
                    .and_then(Json::as_index)
                    .ok_or("`confirm` record missing `local`")?,
            },
            "abort" => FleetRecord::Abort { id: id()? },
            "done" => FleetRecord::Done { id: id()? },
            "dead" => FleetRecord::Dead { id: id()? },
            "rejected" => FleetRecord::Rejected { id: id()? },
            "requeue" => FleetRecord::Requeue { id: id()? },
            "caps" => FleetRecord::Caps {
                caps_w: j
                    .get("caps_w")
                    .and_then(Json::as_arr)
                    .ok_or("`caps` record missing `caps_w`")?
                    .iter()
                    .map(|v| v.as_f64().ok_or("non-numeric cap"))
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "recovered" => FleetRecord::Recovered,
            _ => return Ok(None),
        }))
    }
}

/// The open fleetlog: [`Journal`]'s durable writer with the fleet's own
/// record vocabulary.
pub struct FleetLog {
    journal: Journal,
}

impl FleetLog {
    /// Create (truncate) a fresh log and write the `meta` header.
    pub fn create(path: &Path, shards: usize, cluster_cap_w: f64) -> io::Result<FleetLog> {
        let mut log = FleetLog {
            journal: Journal::create_raw(path)?,
        };
        log.append(&FleetRecord::Meta {
            version: FLEETLOG_FORMAT_VERSION,
            shards,
            cluster_cap_w,
        })?;
        Ok(log)
    }

    /// Reopen for appending after recovery; `seq` is the record count
    /// already in the file.
    pub fn open_append(path: &Path, seq: u64) -> io::Result<FleetLog> {
        Ok(FleetLog {
            journal: Journal::open_append(path, seq)?,
        })
    }

    /// Durably append one record (write + flush + `sync_data`).
    pub fn append(&mut self, record: &FleetRecord) -> io::Result<()> {
        self.journal.append_line(&record.to_json())
    }

    /// Records written so far.
    pub fn seq(&self) -> u64 {
        self.journal.seq()
    }
}

/// What a scan of the log on disk found.
#[derive(Debug, Default)]
pub struct FleetScan {
    /// Every parsed record, in order. A torn final line (the crash
    /// write) is tolerated and excluded.
    pub records: Vec<FleetRecord>,
    /// `FLT009` findings. Errors abandon recovery; the torn-tail case is
    /// a warning.
    pub report: Report,
    /// Byte length of the valid prefix (through the last good line).
    /// [`repair_fleetlog_tail`] truncates the file to this before the
    /// log is reopened for appends.
    pub valid_len: u64,
    /// The last good line is missing its terminating newline (the crash
    /// cut the write after the payload): appending without repair would
    /// concatenate the next record onto it.
    pub needs_newline: bool,
}

/// Read and parse the log. A malformed *final* line is a torn crash
/// write (warning, dropped); a malformed line with records after it
/// means real corruption (error — recovery must not guess).
pub fn scan_fleetlog(path: &Path) -> FleetScan {
    let mut scan = FleetScan::default();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            scan.report.push(
                Diagnostic::new(
                    Code::Flt009,
                    path.display().to_string(),
                    format!("cannot read fleet journal: {e}"),
                )
                .with_severity(Severity::Error),
            );
            return scan;
        }
    };
    let mut pos: u64 = 0;
    let mut line_no = 0usize;
    let mut chunks = text.split_inclusive('\n').peekable();
    while let Some(chunk) = chunks.next() {
        pos += chunk.len() as u64;
        let is_last = chunks.peek().is_none();
        let has_newline = chunk.ends_with('\n');
        let line = chunk.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            if has_newline {
                scan.valid_len = pos;
            }
            continue;
        }
        line_no += 1;
        match FleetRecord::from_json(line) {
            Ok(rec) => {
                if let Some(rec) = rec {
                    scan.records.push(rec);
                }
                // Unknown record types advance the valid prefix too:
                // they are well-formed lines from a newer writer.
                scan.valid_len = pos;
                scan.needs_newline = !has_newline;
            }
            Err(e) if is_last => {
                scan.report.push(
                    Diagnostic::new(
                        Code::Flt009,
                        format!("{}:{line_no}", path.display()),
                        format!("torn final record dropped: {e}"),
                    )
                    .with_severity(Severity::Warning),
                );
            }
            Err(e) => {
                scan.report.push(
                    Diagnostic::new(
                        Code::Flt009,
                        format!("{}:{line_no}", path.display()),
                        format!("corrupt fleet journal record: {e}"),
                    )
                    .with_severity(Severity::Error),
                );
                return scan;
            }
        }
    }
    scan
}

/// Truncate a torn tail off the log (and restore a missing final
/// newline) so the file ends exactly at a record boundary before it is
/// reopened for appends. Returns whether the file was modified.
pub fn repair_fleetlog_tail(path: &Path, scan: &FleetScan) -> io::Result<bool> {
    use std::io::Write as _;
    let mut changed = false;
    let len = std::fs::metadata(path)?.len();
    if len > scan.valid_len {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(scan.valid_len)?;
        f.sync_data()?;
        changed = true;
    }
    if scan.needs_newline {
        let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
        f.write_all(b"\n")?;
        f.sync_data()?;
        changed = true;
    }
    Ok(changed)
}

/// Where recovery concluded one fleet job stands.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredLoc {
    /// Not (certainly) submitted anywhere: re-place and resubmit.
    Pending,
    /// An intent without a confirm: the submit RPC may or may not have
    /// landed on this shard. Must be resolved by keyed resubmission to
    /// the *same* shard, never re-placed.
    InDoubt(usize),
    /// Confirmed on a shard under a local id.
    Submitted {
        /// Accepting shard.
        shard: usize,
        /// Shard-local id.
        local_id: usize,
    },
    /// Terminal: done, on the shard that ran it.
    Done(usize),
    /// Terminal: dead-lettered, on the shard that spent its retries.
    Dead(usize),
    /// Terminal: rejected.
    Rejected,
}

/// One fleet job rebuilt from the log.
#[derive(Debug, Clone)]
pub struct RecoveredFleetJob {
    /// Idempotent submit key.
    pub key: String,
    /// Spec fragment to resubmit from.
    pub spec: String,
    /// Reconstructed location.
    pub loc: RecoveredLoc,
    /// Confirmed submissions counted off `confirm` records.
    pub submits: u32,
    /// `requeue` records counted.
    pub requeues: u32,
}

/// The whole fold of a scanned log.
#[derive(Debug, Default)]
pub struct RecoveredFleet {
    /// One entry per fleet job id, dense in admission order.
    pub jobs: Vec<RecoveredFleetJob>,
    /// Shard count from `meta`.
    pub shards: usize,
    /// Cluster cap from `meta`, watts.
    pub cluster_cap_w: f64,
    /// The last booked per-shard cap split, if any was journaled.
    pub caps_w: Option<Vec<f64>>,
    /// Prior `recovered` markers (this recovery will add one more).
    pub recoveries: usize,
}

/// Fold records into final per-job state. Later records win; any
/// reference to an unknown id or an out-of-order transition is an error
/// (the log is append-only and single-writer, so these only appear under
/// corruption).
pub fn replay_fleetlog(records: &[FleetRecord]) -> Result<RecoveredFleet, String> {
    let mut out = RecoveredFleet::default();
    let mut seen_meta = false;
    for (i, rec) in records.iter().enumerate() {
        let at = |msg: String| format!("record {}: {msg}", i + 1);
        match rec {
            FleetRecord::Meta {
                version,
                shards,
                cluster_cap_w,
            } => {
                if *version != FLEETLOG_FORMAT_VERSION {
                    return Err(at(format!(
                        "fleetlog format v{version}, this build reads v{FLEETLOG_FORMAT_VERSION}"
                    )));
                }
                out.shards = *shards;
                out.cluster_cap_w = *cluster_cap_w;
                seen_meta = true;
            }
            FleetRecord::Admit { id, key, spec } => {
                if *id != out.jobs.len() {
                    return Err(at(format!(
                        "admit id {id} out of order (expected {})",
                        out.jobs.len()
                    )));
                }
                out.jobs.push(RecoveredFleetJob {
                    key: key.clone(),
                    spec: spec.clone(),
                    loc: RecoveredLoc::Pending,
                    submits: 0,
                    requeues: 0,
                });
            }
            FleetRecord::Intent { id, shard } => {
                let job = out
                    .jobs
                    .get_mut(*id)
                    .ok_or_else(|| at(format!("intent for unknown job {id}")))?;
                job.loc = RecoveredLoc::InDoubt(*shard);
            }
            FleetRecord::Confirm {
                id,
                shard,
                local_id,
            } => {
                let job = out
                    .jobs
                    .get_mut(*id)
                    .ok_or_else(|| at(format!("confirm for unknown job {id}")))?;
                job.loc = RecoveredLoc::Submitted {
                    shard: *shard,
                    local_id: *local_id,
                };
                job.submits += 1;
            }
            FleetRecord::Abort { id } => {
                let job = out
                    .jobs
                    .get_mut(*id)
                    .ok_or_else(|| at(format!("abort for unknown job {id}")))?;
                job.loc = RecoveredLoc::Pending;
            }
            FleetRecord::Done { id } => {
                let job = out
                    .jobs
                    .get_mut(*id)
                    .ok_or_else(|| at(format!("done for unknown job {id}")))?;
                let RecoveredLoc::Submitted { shard, .. } = job.loc else {
                    return Err(at(format!("done for job {id} never confirmed anywhere")));
                };
                job.loc = RecoveredLoc::Done(shard);
            }
            FleetRecord::Dead { id } => {
                let job = out
                    .jobs
                    .get_mut(*id)
                    .ok_or_else(|| at(format!("dead for unknown job {id}")))?;
                let RecoveredLoc::Submitted { shard, .. } = job.loc else {
                    return Err(at(format!("dead for job {id} never confirmed anywhere")));
                };
                job.loc = RecoveredLoc::Dead(shard);
            }
            FleetRecord::Rejected { id } => {
                let job = out
                    .jobs
                    .get_mut(*id)
                    .ok_or_else(|| at(format!("rejected for unknown job {id}")))?;
                job.loc = RecoveredLoc::Rejected;
            }
            FleetRecord::Requeue { id } => {
                let job = out
                    .jobs
                    .get_mut(*id)
                    .ok_or_else(|| at(format!("requeue for unknown job {id}")))?;
                job.loc = RecoveredLoc::Pending;
                job.requeues += 1;
            }
            FleetRecord::Caps { caps_w } => out.caps_w = Some(caps_w.clone()),
            FleetRecord::Recovered => out.recoveries += 1,
        }
    }
    if !seen_meta {
        return Err("fleet journal has no meta record".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_log(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "corun-fleetlog-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample_records() -> Vec<FleetRecord> {
        vec![
            FleetRecord::Meta {
                version: FLEETLOG_FORMAT_VERSION,
                shards: 2,
                cluster_cap_w: 40.0,
            },
            FleetRecord::Admit {
                id: 0,
                key: "sradx0.05#0".into(),
                spec: "srad x0.05\n".into(),
            },
            FleetRecord::Admit {
                id: 1,
                key: "sradx0.05#1".into(),
                spec: "srad x0.05\n".into(),
            },
            FleetRecord::Caps {
                caps_w: vec![20.0, 20.0],
            },
            FleetRecord::Intent { id: 0, shard: 0 },
            FleetRecord::Confirm {
                id: 0,
                shard: 0,
                local_id: 0,
            },
            FleetRecord::Intent { id: 1, shard: 1 },
            FleetRecord::Done { id: 0 },
        ]
    }

    #[test]
    fn records_roundtrip_through_json() {
        for rec in sample_records() {
            let line = rec.to_json();
            let back = FleetRecord::from_json(&line)
                .expect("parse")
                .expect("known type");
            assert_eq!(back, rec, "roundtrip {line}");
        }
    }

    #[test]
    fn replay_maps_intent_without_confirm_to_in_doubt() {
        let rec = replay_fleetlog(&sample_records()).expect("replay");
        assert_eq!(rec.jobs.len(), 2);
        assert_eq!(rec.jobs[0].loc, RecoveredLoc::Done(0));
        assert_eq!(rec.jobs[0].submits, 1);
        assert_eq!(rec.jobs[1].loc, RecoveredLoc::InDoubt(1));
        assert_eq!(rec.caps_w, Some(vec![20.0, 20.0]));
    }

    #[test]
    fn scan_tolerates_torn_tail_but_not_mid_file_corruption() {
        let path = temp_log("tail");
        {
            let mut log = FleetLog::create(&path, 2, 40.0).expect("create");
            log.append(&FleetRecord::Admit {
                id: 0,
                key: "k#0".into(),
                spec: "srad x0.05\n".into(),
            })
            .expect("append");
        }
        // Simulate a crash mid-write: a torn, unterminated fragment.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open");
            f.write_all(b"{\"t\":\"intent\",\"id\":0,\"sh")
                .expect("tear");
        }
        let scan = scan_fleetlog(&path);
        assert_eq!(scan.records.len(), 2, "meta + admit survive");
        assert!(!scan.report.has_errors(), "torn tail is only a warning");
        assert_eq!(scan.report.len(), 1);

        // Repair truncates the fragment; appends land clean after it.
        assert!(repair_fleetlog_tail(&path, &scan).expect("repair"));
        {
            let mut log = FleetLog::open_append(&path, scan.records.len() as u64).expect("reopen");
            log.append(&FleetRecord::Recovered).expect("append");
        }
        let rescan = scan_fleetlog(&path);
        assert!(rescan.report.is_empty(), "repaired log scans clean");
        assert_eq!(rescan.records.len(), 3);

        // Corruption *before* valid records is a hard error.
        std::fs::write(&path, "not json at all\n{\"t\":\"recovered\"}\n").expect("write");
        let scan = scan_fleetlog(&path);
        assert!(scan.report.has_errors());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn durable_writer_survives_reopen() {
        let path = temp_log("reopen");
        {
            let mut log = FleetLog::create(&path, 1, 10.0).expect("create");
            log.append(&FleetRecord::Recovered).expect("append");
            assert_eq!(log.seq(), 2);
        }
        let scan = scan_fleetlog(&path);
        assert_eq!(scan.records.len(), 2);
        {
            let mut log = FleetLog::open_append(&path, scan.records.len() as u64).expect("reopen");
            log.append(&FleetRecord::Recovered).expect("append");
            assert_eq!(log.seq(), 3);
        }
        assert_eq!(scan_fleetlog(&path).records.len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
