//! Partition-tolerant coordinator↔shard RPC with deterministic network
//! fault injection.
//!
//! The fleet's original `RemoteShard` assumed a perfect network: blocking
//! calls with no socket deadlines, so one stalled daemon could hang
//! `Fleet::pump` forever, and a reply that raced a reconnect could be
//! paired with the wrong request. This module rebuilds the transport in
//! layers:
//!
//! * [`RawTransport`] — one request line in, one response line out.
//!   [`TcpRaw`] drives a real daemon with connect/read/write timeouts;
//!   [`LocalRaw`] drives an in-process [`Service`] through the same
//!   string protocol, so every fault below applies identically in tests.
//! * [`FaultyRaw`] — a seeded-deterministic fault layer ([`NetFaultPlan`],
//!   parsed from `@netchaos` directives): dropped requests, dropped
//!   replies, delays, duplicated (stale) replies, mid-frame truncation,
//!   and one-way or symmetric partitions over per-shard operation
//!   windows.
//! * [`RpcShard`] — the [`ShardBackend`] everyone uses. Every call gets
//!   a sequence number, a per-op deadline on the injected [`Clock`], and
//!   bounded reconnect-with-backoff jittered by a [`DetRng`]; replies
//!   are rejected unless they echo the request's `seq` (stale/duplicated
//!   replies on a desynchronized connection) and carry a non-regressing
//!   fencing identity (`epoch`, `boot` — see [`Service::epoch`]). A
//!   submission whose reply is lost *after* the request may have landed,
//!   so it is reported [`SubmitOutcome::Indeterminate`], never `Down`:
//!   the coordinator resolves it by re-submitting the same idempotent
//!   key to the same shard, which makes double dispatch across a
//!   partition heal impossible by construction.

use crate::shard::{JobPhase, ShardBackend, ShardMetrics, SubmitOutcome};
use corun_core::{Clock, DetRng, WallClock};
use corun_serve::json::obj;
use corun_serve::{handle_request, Json, Service};
use corun_verify::{Code, Diagnostic, Report};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A transport-level failure, classified by what the coordinator may
/// safely assume about delivery.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Could not even connect or send: the request was certainly never
    /// delivered, so aborting the attempt is safe.
    Unreachable(String),
    /// The deadline passed after the request was (possibly) sent; the
    /// shard may or may not have processed it.
    Timeout(String),
    /// The connection broke after the request was (possibly) sent.
    Disconnected(String),
    /// A reply arrived but did not parse, or echoed the wrong sequence
    /// number (a stale or duplicated frame on a desynchronized
    /// connection).
    Garbled(String),
    /// A reply carried a fencing epoch older than one already observed
    /// from the same incarnation — a split-brain stale shard.
    Fenced {
        /// The newest epoch seen from this shard.
        expected: u64,
        /// The stale epoch the reply carried.
        got: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable(e) => write!(f, "unreachable: {e}"),
            NetError::Timeout(e) => write!(f, "timeout: {e}"),
            NetError::Disconnected(e) => write!(f, "disconnected: {e}"),
            NetError::Garbled(e) => write!(f, "garbled reply: {e}"),
            NetError::Fenced { expected, got } => {
                write!(f, "fenced stale reply: epoch {got}, expected >= {expected}")
            }
        }
    }
}

impl NetError {
    /// True when the request was certainly never delivered, so the
    /// operation can be treated as not-attempted.
    pub fn certainly_undelivered(&self) -> bool {
        matches!(self, NetError::Unreachable(_))
    }
}

/// One line out, one line back: the only thing a transport must do.
/// Everything above (deadlines, retries, fencing) lives in [`RpcShard`];
/// everything below (sockets, injected faults) lives in implementations.
pub trait RawTransport: Send {
    /// Send one request line, read one response line.
    fn exchange(&mut self, line: &str) -> Result<String, NetError>;

    /// Drop any broken connection state and re-establish.
    fn reconnect(&mut self) -> Result<(), NetError>;

    /// Human-readable peer name for error messages.
    fn peer(&self) -> String;

    /// `"local"` or `"remote"`, surfaced through [`ShardBackend::kind`].
    fn kind(&self) -> &'static str;
}

/// A real TCP connection to a `corun serve` daemon, with connect, read,
/// and write timeouts so a hung daemon costs one timeout, never a hung
/// coordinator.
pub struct TcpRaw {
    addr: String,
    io_timeout: Duration,
    conn: Option<(BufReader<TcpStream>, TcpStream)>,
}

impl TcpRaw {
    /// Set up (without dialing) a transport for `addr` (`host:port`).
    pub fn new(addr: &str, io_timeout_s: f64) -> TcpRaw {
        TcpRaw {
            addr: addr.to_string(),
            io_timeout: Duration::from_secs_f64(io_timeout_s.max(0.001)),
            conn: None,
        }
    }

    /// The daemon's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl RawTransport for TcpRaw {
    fn exchange(&mut self, line: &str) -> Result<String, NetError> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let (reader, writer) = self.conn.as_mut().expect("connected above");
        let send = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if let Err(e) = send {
            self.conn = None;
            // A send that fails outright still may have pushed bytes
            // into the kernel; classify as disconnected, not unreachable.
            return Err(NetError::Disconnected(format!("send: {e}")));
        }
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) => {
                self.conn = None;
                Err(NetError::Disconnected(
                    "server closed the connection".into(),
                ))
            }
            Ok(_) => Ok(response),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The reply may still be in flight; this connection is
                // now desynchronized (a late reply would pair with the
                // wrong request), so drop it.
                self.conn = None;
                Err(NetError::Timeout(format!(
                    "no reply within {:?}",
                    self.io_timeout
                )))
            }
            Err(e) => {
                self.conn = None;
                Err(NetError::Disconnected(format!("receive: {e}")))
            }
        }
    }

    fn reconnect(&mut self) -> Result<(), NetError> {
        self.conn = None;
        let addrs: Vec<_> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| NetError::Unreachable(format!("cannot resolve {}: {e}", self.addr)))?
            .collect();
        let mut last = NetError::Unreachable(format!("{} resolves to no address", self.addr));
        for sa in addrs {
            match TcpStream::connect_timeout(&sa, self.io_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(self.io_timeout));
                    let _ = stream.set_write_timeout(Some(self.io_timeout));
                    let read_half = stream
                        .try_clone()
                        .map_err(|e| NetError::Unreachable(format!("cannot clone stream: {e}")))?;
                    self.conn = Some((BufReader::new(read_half), stream));
                    return Ok(());
                }
                Err(e) => last = NetError::Unreachable(format!("cannot connect to {sa}: {e}")),
            }
        }
        Err(last)
    }

    fn peer(&self) -> String {
        self.addr.clone()
    }

    fn kind(&self) -> &'static str {
        "remote"
    }
}

/// An in-process shard behind the same string protocol: requests go
/// through [`handle_request`] exactly as a daemon's would, so the fault
/// layer and the fencing checks exercise identical codepaths in tests.
pub struct LocalRaw {
    service: Arc<Service>,
}

impl LocalRaw {
    /// Wrap a running service.
    pub fn new(service: Arc<Service>) -> LocalRaw {
        LocalRaw { service }
    }

    /// The wrapped service (tests kill/recover it out of band).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }
}

impl RawTransport for LocalRaw {
    fn exchange(&mut self, line: &str) -> Result<String, NetError> {
        Ok(handle_request(&self.service, line))
    }

    fn reconnect(&mut self) -> Result<(), NetError> {
        Ok(())
    }

    fn peer(&self) -> String {
        "local".into()
    }

    fn kind(&self) -> &'static str {
        "local"
    }
}

/// One partition window over a shard's operation counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Target shard index.
    pub shard: usize,
    /// First faulted operation (1-based, inclusive).
    pub from_op: u64,
    /// Last faulted operation (inclusive).
    pub to_op: u64,
    /// One-way: requests are delivered but every reply is lost (the
    /// nastiest case — the shard acts, the coordinator cannot tell).
    /// Symmetric partitions drop the request before delivery.
    pub one_way: bool,
}

/// A seeded, deterministic network fault plan, parsed from `@netchaos`
/// directives (see `docs/FAULTS.md`). All probabilities are per
/// operation; windows index each shard's own operation counter.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    /// Base seed; each shard derives an independent stream from it.
    pub seed: u64,
    /// P(request silently dropped before delivery).
    pub drop_p: f64,
    /// P(reply dropped after the request took effect).
    pub drop_reply_p: f64,
    /// P(reply delayed by `delay_s` — exercises read timeouts).
    pub delay_p: f64,
    /// Injected delay, wall seconds.
    pub delay_s: f64,
    /// P(this reply is stashed and a previously stashed stale reply is
    /// delivered instead — duplicate/reorder, caught by the seq echo).
    pub dup_p: f64,
    /// P(reply truncated mid-frame at a seeded offset).
    pub truncate_p: f64,
    /// Partition windows.
    pub partitions: Vec<Partition>,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan {
            seed: 1,
            drop_p: 0.0,
            drop_reply_p: 0.0,
            delay_p: 0.0,
            delay_s: 0.05,
            dup_p: 0.0,
            truncate_p: 0.0,
            partitions: Vec::new(),
        }
    }
}

impl NetFaultPlan {
    /// True when no fault can ever fire.
    pub fn is_noop(&self) -> bool {
        self.drop_p <= 0.0
            && self.drop_reply_p <= 0.0
            && self.delay_p <= 0.0
            && self.dup_p <= 0.0
            && self.truncate_p <= 0.0
            && self.partitions.is_empty()
    }

    /// Parse every `@netchaos` line in `text` into one accumulated plan
    /// (`None` when no directive is present). Grammar, space-separated
    /// `key=value` tokens:
    ///
    /// ```text
    /// @netchaos seed=7 drop=0.1 drop-reply=0.05 dup=0.1 truncate=0.05
    /// @netchaos delay=0.2 delay-s=0.01
    /// @netchaos partition=1:10..40 oneway=2:5..25
    /// ```
    pub fn parse(text: &str) -> Result<Option<NetFaultPlan>, String> {
        let mut plan = NetFaultPlan::default();
        let mut seen = false;
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("@netchaos") else {
                continue;
            };
            seen = true;
            for tok in rest.split_whitespace() {
                plan.apply_token(tok)?;
            }
        }
        Ok(seen.then_some(plan))
    }

    fn apply_token(&mut self, tok: &str) -> Result<(), String> {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| format!("`{tok}`: expected key=value"))?;
        let prob = |v: &str| -> Result<f64, String> {
            let p: f64 = v
                .parse()
                .map_err(|_| format!("`{tok}`: `{v}` is not a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("`{tok}`: probability must be in [0, 1]"));
            }
            Ok(p)
        };
        match key {
            "seed" => {
                self.seed = value
                    .parse()
                    .map_err(|_| format!("`{tok}`: `{value}` is not an integer seed"))?;
            }
            "drop" => self.drop_p = prob(value)?,
            "drop-reply" => self.drop_reply_p = prob(value)?,
            "delay" => self.delay_p = prob(value)?,
            "delay-s" => {
                let s: f64 = value
                    .parse()
                    .map_err(|_| format!("`{tok}`: `{value}` is not a number"))?;
                if !s.is_finite() || s < 0.0 {
                    return Err(format!("`{tok}`: delay must be finite and non-negative"));
                }
                self.delay_s = s;
            }
            "dup" => self.dup_p = prob(value)?,
            "truncate" => self.truncate_p = prob(value)?,
            "partition" | "oneway" => {
                let (shard, window) = value
                    .split_once(':')
                    .ok_or_else(|| format!("`{tok}`: expected SHARD:FROM..TO"))?;
                let shard: usize = shard
                    .parse()
                    .map_err(|_| format!("`{tok}`: `{shard}` is not a shard index"))?;
                let (from, to) = window
                    .split_once("..")
                    .ok_or_else(|| format!("`{tok}`: expected SHARD:FROM..TO"))?;
                let from_op: u64 = from
                    .parse()
                    .map_err(|_| format!("`{tok}`: `{from}` is not an op index"))?;
                let to_op: u64 = to
                    .parse()
                    .map_err(|_| format!("`{tok}`: `{to}` is not an op index"))?;
                if to_op < from_op {
                    return Err(format!("`{tok}`: window is empty (to < from)"));
                }
                self.partitions.push(Partition {
                    shard,
                    from_op,
                    to_op,
                    one_way: key == "oneway",
                });
            }
            other => return Err(format!("`{tok}`: unknown netchaos key `{other}`")),
        }
        Ok(())
    }

    /// Is `op` (1-based) inside a partition window for `shard`?
    /// `reply_side` selects one-way windows (reply lost after delivery)
    /// versus symmetric ones (request lost before delivery).
    fn partitioned(&self, shard: usize, op: u64, reply_side: bool) -> bool {
        self.partitions.iter().any(|p| {
            p.shard == shard && p.one_way == reply_side && (p.from_op..=p.to_op).contains(&op)
        })
    }
}

/// Lint + parse `@netchaos` directives: grammar errors become `FLT005`
/// diagnostics located at `netchaos:<line>` instead of a hard failure.
pub fn lint_netchaos(text: &str) -> (Option<NetFaultPlan>, Report) {
    let mut report = Report::new();
    for (i, line) in text.lines().enumerate() {
        if !line.trim().starts_with("@netchaos") {
            continue;
        }
        if let Err(e) = NetFaultPlan::parse(line) {
            report.push(Diagnostic::new(
                Code::Flt005,
                format!("netchaos:{}", i + 1),
                e,
            ));
        }
    }
    let plan = if report.has_errors() {
        None
    } else {
        NetFaultPlan::parse(text).ok().flatten()
    };
    (plan, report)
}

/// The deterministic fault layer: wraps any [`RawTransport`] and applies
/// a [`NetFaultPlan`] with a per-shard seeded stream. Faults fire on the
/// wrapped shard's own operation counter, so a plan replays identically
/// regardless of what the rest of the fleet does.
pub struct FaultyRaw<T: RawTransport> {
    inner: T,
    plan: NetFaultPlan,
    rng: DetRng,
    shard: usize,
    op: u64,
    /// The reply a `dup` fault stashed, delivered (stale) on the next
    /// dup hit — modeling duplicated/reordered frames.
    stale: Option<String>,
}

impl<T: RawTransport> FaultyRaw<T> {
    /// Wrap `inner` for shard index `shard` under `plan`.
    pub fn new(inner: T, plan: NetFaultPlan, shard: usize) -> FaultyRaw<T> {
        // Independent child stream per shard: the splitmix sequence is a
        // pure function of (plan seed, shard).
        let mut parent = DetRng::new(plan.seed ^ 0x6e65_7463_6861_6f73); // "netchaos"
        let mut rng = parent.split();
        for _ in 0..shard {
            rng = parent.split();
        }
        FaultyRaw {
            inner,
            plan,
            rng,
            shard,
            op: 0,
            stale: None,
        }
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.next_unit() < p
    }
}

impl<T: RawTransport> RawTransport for FaultyRaw<T> {
    fn exchange(&mut self, line: &str) -> Result<String, NetError> {
        self.op += 1;
        let op = self.op;
        // Request-side faults: the shard never sees the line.
        if self.plan.partitioned(self.shard, op, false) {
            return Err(NetError::Timeout(format!("partitioned (op {op})")));
        }
        if self.roll(self.plan.drop_p) {
            return Err(NetError::Timeout(format!("request dropped (op {op})")));
        }
        if self.roll(self.plan.delay_p) && self.plan.delay_s > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(self.plan.delay_s));
        }
        let reply = self.inner.exchange(line)?;
        // Reply-side faults: the request took effect, the answer is lost
        // or mangled — the indeterminate cases fencing must survive.
        if self.plan.partitioned(self.shard, op, true) || self.roll(self.plan.drop_reply_p) {
            return Err(NetError::Timeout(format!("reply dropped (op {op})")));
        }
        let reply = if self.roll(self.plan.dup_p) {
            match self.stale.replace(reply.clone()) {
                Some(old) => old, // deliver the stale frame instead
                None => reply,
            }
        } else {
            reply
        };
        if self.roll(self.plan.truncate_p) && !reply.is_empty() {
            let mut cut = (self.rng.next_unit() * reply.len() as f64) as usize;
            while cut > 0 && !reply.is_char_boundary(cut) {
                cut -= 1;
            }
            return Ok(reply[..cut].to_string());
        }
        Ok(reply)
    }

    fn reconnect(&mut self) -> Result<(), NetError> {
        // A fresh connection cannot deliver frames from the old one.
        self.stale = None;
        self.inner.reconnect()
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

/// Deadline/retry/backoff policy for one shard's RPC channel.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Per-operation deadline, seconds on the injected clock, across all
    /// attempts.
    pub op_timeout_s: f64,
    /// Socket connect/read/write timeout, seconds ([`TcpRaw`] only).
    pub io_timeout_s: f64,
    /// Max exchange attempts per operation (1 = no retry).
    pub attempts: u32,
    /// Backoff base, seconds; attempt `k` waits about `base * 2^k`.
    pub backoff_base_s: f64,
    /// Upper bound on one backoff sleep, seconds.
    pub backoff_max_s: f64,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            op_timeout_s: 5.0,
            io_timeout_s: 2.0,
            attempts: 3,
            backoff_base_s: 0.01,
            backoff_max_s: 0.25,
            seed: 0xc0de,
        }
    }
}

/// Rolled-up RPC health counters for one shard, surfaced in
/// `corun fleet status` and the coordinator's progress stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RpcSnapshot {
    /// Operations attempted.
    pub ops: u64,
    /// Extra attempts beyond the first.
    pub retries: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Reconnects performed.
    pub reconnects: u64,
    /// Replies rejected for a regressed fencing epoch.
    pub fenced: u64,
    /// Replies rejected for a wrong sequence echo or parse failure.
    pub desyncs: u64,
    /// Median successful-op latency, milliseconds (over a ring of the
    /// last 256 ops).
    pub p50_ms: f64,
    /// 99th-percentile successful-op latency, milliseconds.
    pub p99_ms: f64,
}

/// Internal latency ring + counters behind [`RpcSnapshot`].
#[derive(Debug, Default)]
struct RpcStats {
    ops: u64,
    retries: u64,
    timeouts: u64,
    reconnects: u64,
    fenced: u64,
    desyncs: u64,
    latencies_s: Vec<f64>,
    next: usize,
}

const LATENCY_RING: usize = 256;

impl RpcStats {
    fn record_latency(&mut self, dt_s: f64) {
        if !dt_s.is_finite() || dt_s < 0.0 {
            return;
        }
        if self.latencies_s.len() < LATENCY_RING {
            self.latencies_s.push(dt_s);
        } else {
            self.latencies_s[self.next] = dt_s;
        }
        self.next = (self.next + 1) % LATENCY_RING;
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        if self.latencies_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_s.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)] * 1e3
    }

    fn snapshot(&self) -> RpcSnapshot {
        RpcSnapshot {
            ops: self.ops,
            retries: self.retries,
            timeouts: self.timeouts,
            reconnects: self.reconnects,
            fenced: self.fenced,
            desyncs: self.desyncs,
            p50_ms: self.percentile_ms(0.50),
            p99_ms: self.percentile_ms(0.99),
        }
    }
}

/// A shard driven over any [`RawTransport`] with deadlines, bounded
/// retries, sequence-echo matching, and epoch/boot fencing. The
/// workhorse [`ShardBackend`]; [`RemoteShard`] is the TCP instantiation.
pub struct RpcShard<T: RawTransport> {
    raw: T,
    cfg: NetConfig,
    clock: Arc<dyn Clock>,
    rng: DetRng,
    seq: u64,
    /// Newest fencing identity observed from this shard (0 = none yet).
    boot: u64,
    epoch: u64,
    /// Set when a reply reveals a *different* incarnation (new boot or
    /// higher epoch) than previously observed; the coordinator drains it
    /// with [`ShardBackend::take_incarnation_change`] and re-resolves
    /// every in-flight job against the new incarnation's journal.
    incarnation_changed: bool,
    stats: RpcStats,
}

impl<T: RawTransport> RpcShard<T> {
    /// Wrap `raw` under `cfg`, reading deadlines from `clock`.
    pub fn over(raw: T, cfg: NetConfig, clock: Arc<dyn Clock>) -> RpcShard<T> {
        RpcShard {
            raw,
            rng: DetRng::new(cfg.seed),
            cfg,
            clock,
            seq: 0,
            boot: 0,
            epoch: 0,
            incarnation_changed: false,
            stats: RpcStats::default(),
        }
    }

    /// One deadline-bounded, retried call. `fields` must not contain
    /// `seq` — it is stamped here and checked against the reply's echo.
    fn call(&mut self, mut fields: Vec<(&str, Json)>) -> Result<Json, NetError> {
        self.seq += 1;
        let seq = self.seq;
        fields.push(("seq", Json::Num(seq as f64)));
        let line = obj(fields).render();
        let deadline = self.clock.now_s() + self.cfg.op_timeout_s;
        self.stats.ops += 1;
        let mut last = NetError::Timeout("op deadline exhausted".into());
        // Once any attempt fails *after* the send, the op can no longer
        // be reported as certainly-undelivered.
        let mut maybe_delivered = false;
        for attempt in 0..self.cfg.attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
                self.stats.reconnects += 1;
                let _ = self.raw.reconnect();
                let remaining = deadline - self.clock.now_s();
                if remaining <= 0.0 {
                    break;
                }
                let exp = self.cfg.backoff_base_s * f64::from(1u32 << attempt.min(16));
                let jitter = 1.0 + 0.5 * self.rng.next_unit();
                let delay = (exp * jitter).min(self.cfg.backoff_max_s).min(remaining);
                if delay > 0.0 {
                    // Backoff pacing at the I/O edge: real sleeps against
                    // a wall clock, no-ops under a ManualClock in tests.
                    std::thread::sleep(Duration::from_secs_f64(delay.min(1.0)));
                }
            }
            if self.clock.now_s() >= deadline {
                break;
            }
            let t0 = self.clock.now_s();
            match self.raw.exchange(&line) {
                Ok(reply) => match self.accept_reply(seq, &reply) {
                    Ok(json) => {
                        self.stats.record_latency(self.clock.now_s() - t0);
                        return Ok(json);
                    }
                    Err(e) => {
                        maybe_delivered = true;
                        last = e;
                    }
                },
                Err(e) => {
                    if matches!(e, NetError::Timeout(_)) {
                        self.stats.timeouts += 1;
                    }
                    if !e.certainly_undelivered() {
                        maybe_delivered = true;
                    }
                    last = e;
                }
            }
        }
        if maybe_delivered && last.certainly_undelivered() {
            // Do not let a final connect failure mask an earlier
            // possibly-delivered attempt.
            last = NetError::Timeout("retried after a possibly-delivered attempt".into());
        }
        Err(last)
    }

    /// Validate one reply: parse, sequence echo, fencing identity.
    fn accept_reply(&mut self, seq: u64, reply: &str) -> Result<Json, NetError> {
        let json = Json::parse(reply.trim()).map_err(|e| {
            self.stats.desyncs += 1;
            NetError::Garbled(format!("unparseable reply: {e}"))
        })?;
        if let Some(echo) = json.get("seq").and_then(Json::as_f64) {
            if echo as u64 != seq {
                self.stats.desyncs += 1;
                // The connection is delivering stale frames; a reconnect
                // flushes them.
                let _ = self.raw.reconnect();
                self.stats.reconnects += 1;
                return Err(NetError::Garbled(format!(
                    "stale reply: seq {} echoed for request {seq}",
                    echo as u64
                )));
            }
        }
        let boot = json.get("boot").and_then(Json::as_f64).map(|b| b as u64);
        let epoch = json.get("epoch").and_then(Json::as_f64).map(|e| e as u64);
        if let (Some(boot), Some(epoch)) = (boot, epoch) {
            if boot == self.boot && epoch < self.epoch {
                // Same process answering with an older epoch: a stale
                // split-brain frame. Never fold it into the books.
                self.stats.fenced += 1;
                return Err(NetError::Fenced {
                    expected: self.epoch,
                    got: epoch,
                });
            }
            if self.boot != 0 && (boot != self.boot || epoch > self.epoch) {
                self.incarnation_changed = true;
            }
            self.boot = boot;
            self.epoch = epoch;
        }
        Ok(json)
    }

    /// The newest fencing epoch observed from this shard (0 before any
    /// reply).
    pub fn observed_epoch(&self) -> u64 {
        self.epoch
    }
}

/// The TCP-backed shard: [`RpcShard`] over [`TcpRaw`].
pub type RemoteShard = RpcShard<TcpRaw>;

impl RemoteShard {
    /// Connect to a daemon at `addr` (`host:port`) with default
    /// deadlines and a wall clock (tests inject their own via
    /// [`RpcShard::over`]).
    pub fn connect(addr: &str) -> Result<RemoteShard, String> {
        Self::connect_with(addr, NetConfig::default())
    }

    /// Connect with explicit deadlines.
    pub fn connect_with(addr: &str, cfg: NetConfig) -> Result<RemoteShard, String> {
        let mut raw = TcpRaw::new(addr, cfg.io_timeout_s);
        raw.reconnect().map_err(|e| e.to_string())?;
        Ok(RpcShard::over(raw, cfg, Arc::new(WallClock::new())))
    }

    /// The daemon's address.
    pub fn addr(&self) -> &str {
        self.raw.addr()
    }
}

/// An in-process shard behind the full RPC + fault stack: the service
/// answers through [`handle_request`], faults per `plan`, fencing and
/// retries exactly as over TCP. The test harness for everything here.
pub fn over_local(
    service: Arc<Service>,
    plan: Option<NetFaultPlan>,
    shard: usize,
    cfg: NetConfig,
    clock: Arc<dyn Clock>,
) -> RpcShard<FaultyRaw<LocalRaw>> {
    let raw = FaultyRaw::new(LocalRaw::new(service), plan.unwrap_or_default(), shard);
    RpcShard::over(raw, cfg, clock)
}

impl<T: RawTransport> ShardBackend for RpcShard<T> {
    fn submit(&mut self, key: &str, spec: &str) -> SubmitOutcome {
        let r = self.call(vec![
            ("op", Json::Str("submit".into())),
            ("spec", Json::Str(spec.into())),
            ("key", Json::Str(key.into())),
        ]);
        let r = match r {
            Ok(r) => r,
            // Never delivered: safe to abort and re-place. Anything else
            // may have landed on the shard — keyed resolution decides.
            Err(e) if e.certainly_undelivered() => return SubmitOutcome::Down(e.to_string()),
            Err(e) => return SubmitOutcome::Indeterminate(e.to_string()),
        };
        if r.get("ok").and_then(Json::as_bool) == Some(true) {
            let ids = r
                .get("ids")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_index).collect::<Vec<_>>())
                .unwrap_or_default();
            return SubmitOutcome::Accepted(ids);
        }
        let code = r.get("error").and_then(Json::as_str).unwrap_or("unknown");
        let msg = r
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("no message")
            .to_string();
        match code {
            "queue_full" => SubmitOutcome::Backpressure {
                retry_after_s: r
                    .get("retry_after_s")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.05)
                    .max(0.0),
            },
            "shutting_down" => SubmitOutcome::Down(msg),
            _ => SubmitOutcome::Refused(format!("{code}: {msg}")),
        }
    }

    fn job_phase(&mut self, local_id: usize) -> Result<JobPhase, String> {
        let r = self
            .call(vec![
                ("op", Json::Str("status".into())),
                ("id", Json::Num(local_id as f64)),
            ])
            .map_err(|e| e.to_string())?;
        if r.get("error").and_then(Json::as_str) == Some("unknown_job") {
            return Ok(JobPhase::Unknown);
        }
        Ok(match r.get("state").and_then(Json::as_str) {
            Some("done") => JobPhase::Done,
            Some("dead-letter") => JobPhase::DeadLetter,
            Some("rejected") => JobPhase::Rejected,
            _ => JobPhase::Pending,
        })
    }

    fn metrics(&mut self) -> Result<ShardMetrics, String> {
        let m = self
            .call(vec![("op", Json::Str("metrics".into()))])
            .map_err(|e| e.to_string())?;
        let num = |k: &str| m.get(k).and_then(Json::as_index).unwrap_or(0);
        Ok(ShardMetrics {
            queue_depth: num("queue_depth"),
            submitted: num("submitted"),
            completed: num("completed"),
            dead_lettered: num("dead_lettered"),
            workers_alive: num("workers_alive"),
            machines: num("machines"),
            cap_w: m.get("cap_w").and_then(Json::as_f64).unwrap_or(0.0),
            cap_violations: num("cap_violations"),
            cap_samples: num("cap_samples"),
        })
    }

    fn set_cap(&mut self, cap_w: f64) -> Result<(), String> {
        let r = self
            .call(vec![
                ("op", Json::Str("set_cap".into())),
                ("cap_w", Json::Num(cap_w)),
            ])
            .map_err(|e| e.to_string())?;
        if r.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(r
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("set_cap refused")
                .to_string())
        }
    }

    fn recover(&mut self, cap_w: f64) -> Result<(), String> {
        self.raw.reconnect().map_err(|e| e.to_string())?;
        let r = self
            .call(vec![("op", Json::Str("ping".into()))])
            .map_err(|e| e.to_string())?;
        if r.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("{} did not answer ping", self.raw.peer()));
        }
        if cap_w.is_finite() && cap_w > 0.0 {
            self.set_cap(cap_w)?;
        }
        Ok(())
    }

    fn begin_shutdown(&mut self) {
        let _ = self.call(vec![("op", Json::Str("shutdown".into()))]);
    }

    fn finish(&mut self) {
        // Remote daemons outlive the coordinator; local test services
        // are owned (and joined) by whoever holds the Arc.
    }

    fn kind(&self) -> &'static str {
        self.raw.kind()
    }

    fn take_incarnation_change(&mut self) -> bool {
        std::mem::take(&mut self.incarnation_changed)
    }

    fn rpc_stats(&self) -> RpcSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netchaos_parse_accumulates_directives() {
        let plan = NetFaultPlan::parse(
            "srad x0.05 *4\n@netchaos seed=9 drop=0.25 dup=0.5\n@netchaos oneway=1:3..7\n",
        )
        .expect("parse")
        .expect("plan present");
        assert_eq!(plan.seed, 9);
        assert!((plan.drop_p - 0.25).abs() < 1e-12);
        assert!((plan.dup_p - 0.5).abs() < 1e-12);
        assert_eq!(
            plan.partitions,
            vec![Partition {
                shard: 1,
                from_op: 3,
                to_op: 7,
                one_way: true
            }]
        );
        assert!(NetFaultPlan::parse("srad\n")
            .expect("no directive")
            .is_none());
    }

    #[test]
    fn netchaos_parse_names_the_offending_token() {
        for bad in [
            "@netchaos drop=1.5",
            "@netchaos seed=x",
            "@netchaos partition=1:9..3",
            "@netchaos wat=1",
            "@netchaos partition=1",
        ] {
            let err = NetFaultPlan::parse(bad).expect_err("must fail");
            assert!(err.contains('`'), "error should quote the token: {err}");
        }
    }

    #[test]
    fn lint_netchaos_reports_flt005_with_line() {
        let (plan, report) = lint_netchaos("srad\n@netchaos drop=oops\n");
        assert!(plan.is_none());
        assert!(report.has_errors());
        assert!(report.render_human().contains("netchaos:2"));
    }

    #[test]
    fn faulty_raw_is_deterministic_per_seed_and_shard() {
        struct Echo;
        impl RawTransport for Echo {
            fn exchange(&mut self, line: &str) -> Result<String, NetError> {
                Ok(line.to_string())
            }
            fn reconnect(&mut self) -> Result<(), NetError> {
                Ok(())
            }
            fn peer(&self) -> String {
                "echo".into()
            }
            fn kind(&self) -> &'static str {
                "local"
            }
        }
        let plan = NetFaultPlan::parse("@netchaos seed=7 drop=0.3 drop-reply=0.2 truncate=0.2\n")
            .expect("parse")
            .expect("plan");
        let run = |shard: usize| {
            let mut t = FaultyRaw::new(Echo, plan.clone(), shard);
            (0..64)
                .map(|i| match t.exchange(&format!("req-{i}")) {
                    Ok(r) => format!("ok:{r}"),
                    Err(e) => format!("err:{e}"),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(0), "same seed+shard replays identically");
        assert_ne!(run(0), run(1), "different shards draw different streams");
    }
}
