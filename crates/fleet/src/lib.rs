//! # corun-fleet — sharded fleet coordination under one cluster power cap
//!
//! The paper schedules co-run jobs under a power cap on *one* integrated
//! CPU-GPU node; this crate scales that out. A [`Fleet`] coordinator
//! routes jobs across shard workers — each shard a full
//! [`corun_serve::Service`] driving many simulated APUs under
//! [`corun_core::OnlinePolicy`] — and owns the decisions only a fleet
//! level can make:
//!
//! * **Placement** ([`placement`]) — a consistent-hash ring by job key
//!   with a least-loaded fallback, behind the [`Placement`] trait.
//! * **Work stealing** ([`router`]) — backlog moves from deep to shallow
//!   shards when the spread crosses a threshold; only *unsubmitted*
//!   jobs move, so stealing can never double-dispatch.
//! * **Budget partitioning** ([`corun_core::budget`]) — the cluster
//!   power cap is split across shards proportionally to admitted demand
//!   and rebalanced on a cadence; the sum of handed-out caps never
//!   exceeds the cluster cap (checked by `FLT004` every round).
//! * **Recovery** ([`shard`]) — a crashed shard restarts from its
//!   `corun_serve::journal` with no lost and no double-dispatched jobs;
//!   a shard lost *without* a journal gets its jobs re-placed through
//!   the router's single `requeue_lost` edge.
//! * **Partition tolerance** ([`net`]) — every coordinator↔shard RPC is
//!   deadline-bounded with bounded reconnect/backoff, sequence-echo
//!   matched, and fenced by the shard's journal epoch, so a stale
//!   incarnation can never answer for a recovered one. A per-shard
//!   circuit breaker (`Live`/`Suspect`/`Dead`) stops routing to
//!   unreachable shards while their booked power cap stays reserved.
//!   Deterministic network-fault injection (`@netchaos` directives →
//!   [`NetFaultPlan`]) drives drops, delays, duplicates, truncated
//!   frames, and one-way partitions through the same transport stack
//!   the TCP path uses.
//! * **Coordinator crash recovery** ([`fleetlog`]) — a write-ahead
//!   journal (admit / intent / confirm / terminal / caps records) lets
//!   [`Fleet::recover`] rebuild the books after a coordinator `kill -9`:
//!   intent-without-confirm jobs come back pinned in doubt and are
//!   settled by keyed resubmission, never double-dispatched.
//!
//! Shards run in-process ([`LocalShard`], see [`start_local_shards`]) or
//! as remote `corun serve` daemons over the line-JSON protocol
//! ([`RemoteShard`]). `corun fleet` is the CLI surface; see
//! `docs/FLEET.md`.

pub mod coordinator;
pub mod fleetlog;
pub mod net;
pub mod placement;
pub mod router;
pub mod shard;

pub use coordinator::{Circuit, Fleet, FleetConfig, FleetMetrics, PlacementKind};
pub use fleetlog::{
    repair_fleetlog_tail, replay_fleetlog, scan_fleetlog, FleetLog, FleetRecord, FleetScan,
    RecoveredFleet, RecoveredFleetJob, RecoveredLoc, FLEETLOG_FORMAT_VERSION,
};
pub use net::{
    lint_netchaos, over_local, NetConfig, NetError, NetFaultPlan, Partition, RawTransport,
    RemoteShard, RpcShard, RpcSnapshot,
};
pub use placement::{HashRing, LeastLoaded, Placement, ShardView};
pub use router::{FleetJob, FleetJobId, JobLoc, Router, Steal};
pub use shard::{
    start_local_shards, JobPhase, LocalShard, ShardBackend, ShardMetrics, SubmitOutcome,
};
