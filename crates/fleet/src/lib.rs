//! # corun-fleet — sharded fleet coordination under one cluster power cap
//!
//! The paper schedules co-run jobs under a power cap on *one* integrated
//! CPU-GPU node; this crate scales that out. A [`Fleet`] coordinator
//! routes jobs across shard workers — each shard a full
//! [`corun_serve::Service`] driving many simulated APUs under
//! [`corun_core::OnlinePolicy`] — and owns the decisions only a fleet
//! level can make:
//!
//! * **Placement** ([`placement`]) — a consistent-hash ring by job key
//!   with a least-loaded fallback, behind the [`Placement`] trait.
//! * **Work stealing** ([`router`]) — backlog moves from deep to shallow
//!   shards when the spread crosses a threshold; only *unsubmitted*
//!   jobs move, so stealing can never double-dispatch.
//! * **Budget partitioning** ([`corun_core::budget`]) — the cluster
//!   power cap is split across shards proportionally to admitted demand
//!   and rebalanced on a cadence; the sum of handed-out caps never
//!   exceeds the cluster cap (checked by `FLT004` every round).
//! * **Recovery** ([`shard`]) — a crashed shard restarts from its
//!   `corun_serve::journal` with no lost and no double-dispatched jobs;
//!   a shard lost *without* a journal gets its jobs re-placed through
//!   the router's single `requeue_lost` edge.
//!
//! Shards run in-process ([`LocalShard`], see [`start_local_shards`]) or
//! as remote `corun serve` daemons over the line-JSON protocol
//! ([`RemoteShard`]). `corun fleet` is the CLI surface; see
//! `docs/FLEET.md`.

pub mod coordinator;
pub mod placement;
pub mod router;
pub mod shard;

pub use coordinator::{Fleet, FleetConfig, FleetMetrics, PlacementKind};
pub use placement::{HashRing, LeastLoaded, Placement, ShardView};
pub use router::{FleetJob, FleetJobId, JobLoc, Router, Steal};
pub use shard::{
    start_local_shards, JobPhase, LocalShard, RemoteShard, ShardBackend, ShardMetrics,
    SubmitOutcome,
};
