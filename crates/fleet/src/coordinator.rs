//! The fleet coordinator: placement, submission pumping, completion
//! tracking, work stealing, budget rebalancing, and shard recovery.
//!
//! The coordinator is deliberately a *polling* loop ([`Fleet::pump`])
//! rather than a callback web: every round it refreshes its view of the
//! shards, rebalances the cluster power budget on its cadence, steals
//! backlog between imbalanced shards, pushes submissions, and folds
//! terminal job states back into the [`Router`]. One thread drives
//! thousands of simulated machines this way; the shards do the heavy
//! lifting on their own worker threads (in-process mode) or in separate
//! daemons (remote mode).

use crate::fleetlog::{
    repair_fleetlog_tail, replay_fleetlog, scan_fleetlog, FleetLog, FleetRecord, RecoveredLoc,
};
use crate::net::RpcSnapshot;
use crate::placement::{HashRing, LeastLoaded, Placement, ShardView};
use crate::router::{FleetJob, FleetJobId, JobLoc, Router};
use crate::shard::{JobPhase, ShardBackend, ShardMetrics, SubmitOutcome};
use corun_core::budget::{partition_cluster_cap, ShardDemand};
use corun_verify::{Code, Diagnostic, Report, Severity};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Which placement policy the coordinator routes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    /// Consistent-hash ring by job key, least-loaded only as liveness
    /// fallback.
    Ring,
    /// Always the live shard with the shallowest load.
    LeastLoaded,
}

impl PlacementKind {
    fn build(self, shards: usize) -> Box<dyn Placement> {
        match self {
            PlacementKind::Ring => Box::new(HashRing::new(shards)),
            PlacementKind::LeastLoaded => Box::new(LeastLoaded),
        }
    }

    /// Parse `"ring"` / `"least-loaded"`.
    pub fn parse(s: &str) -> Result<PlacementKind, String> {
        match s {
            "ring" => Ok(PlacementKind::Ring),
            "least-loaded" => Ok(PlacementKind::LeastLoaded),
            other => Err(format!(
                "unknown placement `{other}` (expected `ring` or `least-loaded`)"
            )),
        }
    }
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard count (must match the backend vector handed to
    /// [`Fleet::new`]).
    pub shards: usize,
    /// Simulated machines per shard (topology metadata for lints and
    /// status output; the backends themselves define the truth).
    pub machines_per_shard: usize,
    /// The datacenter power cap partitioned across shards, watts.
    pub cluster_cap_w: f64,
    /// Minimum cap every live shard keeps, watts.
    pub shard_floor_w: f64,
    /// Queue-depth spread (max - min over live shards) that triggers
    /// work stealing.
    pub steal_threshold: usize,
    /// Max jobs one steal moves.
    pub steal_batch: usize,
    /// Rounds between budget rebalances.
    pub rebalance_every: usize,
    /// Stop submitting to a shard once its observed queue depth reaches
    /// this many jobs.
    pub queue_high_water: usize,
    /// Max submissions pushed to one shard in one round.
    pub submit_burst: usize,
    /// Placement policy.
    pub placement: PlacementKind,
    /// Re-dial / restart dead shards automatically every
    /// `recover_backoff_rounds`.
    pub auto_recover: bool,
    /// Rounds between automatic recovery attempts for a dead shard.
    pub recover_backoff_rounds: u64,
    /// Consecutive transport failures before a shard's circuit reads
    /// `Suspect`.
    pub suspect_after: u32,
    /// Consecutive transport failures before the circuit opens (`Dead`):
    /// the coordinator stops routing to the shard and only probes it.
    pub dead_after: u32,
    /// Rounds between probes of an open-circuit shard.
    pub probe_every_rounds: u64,
    /// Write-ahead coordinator journal (`FleetLog`); `None` disables
    /// coordinator crash recovery.
    pub journal_path: Option<PathBuf>,
    /// Run `Router::check_books` every round (O(jobs); tests only).
    pub paranoid: bool,
}

impl FleetConfig {
    /// Defaults sized for in-process fleets.
    pub fn new(shards: usize, machines_per_shard: usize, cluster_cap_w: f64) -> FleetConfig {
        FleetConfig {
            shards,
            machines_per_shard,
            cluster_cap_w,
            shard_floor_w: 5.0,
            steal_threshold: 8,
            steal_batch: 32,
            rebalance_every: 4,
            queue_high_water: 48,
            submit_burst: 16,
            placement: PlacementKind::Ring,
            auto_recover: true,
            recover_backoff_rounds: 10,
            suspect_after: 1,
            dead_after: 3,
            probe_every_rounds: 5,
            journal_path: None,
            paranoid: false,
        }
    }

    /// The `FLT0xx` lint view of this config.
    pub fn lint(&self) -> corun_verify::Report {
        let mut report = corun_verify::lint_fleet(&corun_verify::FleetParams {
            shards: self.shards,
            machines_per_shard: self.machines_per_shard,
            cluster_cap_w: self.cluster_cap_w,
            shard_floor_w: self.shard_floor_w,
            steal_threshold: self.steal_threshold,
            rebalance_every: self.rebalance_every,
        });
        report.merge(corun_verify::lint_net_config(&corun_verify::NetParams {
            suspect_after: self.suspect_after,
            dead_after: self.dead_after,
            probe_every_rounds: self.probe_every_rounds,
        }));
        report
    }
}

/// Transport-health state of one shard's circuit breaker. Distinct from
/// worker liveness: a shard whose workers all died still answers RPC
/// (circuit `Live`, `alive == false`), while a partitioned shard may be
/// healthy but unreachable (circuit `Dead`, work fenced off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Circuit {
    /// Transport healthy.
    Live,
    /// Recent transport failures; still routed to, watched closely.
    Suspect,
    /// Circuit open: not routed to, probed every `probe_every_rounds`.
    Dead,
}

impl Circuit {
    /// Lowercase label for status output.
    pub fn as_str(self) -> &'static str {
        match self {
            Circuit::Live => "live",
            Circuit::Suspect => "suspect",
            Circuit::Dead => "dead",
        }
    }
}

/// Per-shard breaker bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Breaker {
    state: Circuit,
    failures: u32,
    last_probe_round: u64,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: Circuit::Live,
            failures: 0,
            last_probe_round: 0,
        }
    }
}

/// Aggregated fleet metrics (`corun fleet` surfaces these).
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    /// Per-shard snapshots (last successful poll for dead shards).
    pub shards: Vec<ShardMetrics>,
    /// Per-shard liveness.
    pub alive: Vec<bool>,
    /// Per-shard caps from the last rebalance, watts.
    pub caps_w: Vec<f64>,
    /// Sum of the live caps, watts.
    pub cap_sum_w: f64,
    /// Largest cap sum ever handed out, watts (must stay within the
    /// cluster cap — the smoke test asserts it).
    pub max_cap_sum_w: f64,
    /// The cluster cap, watts.
    pub cluster_cap_w: f64,
    /// Jobs admitted to the fleet.
    pub jobs_total: usize,
    /// Jobs finished.
    pub jobs_done: usize,
    /// Jobs dead-lettered by their shard.
    pub jobs_dead_letter: usize,
    /// Jobs rejected (lint / infeasible).
    pub jobs_rejected: usize,
    /// Jobs waiting in coordinator backlogs.
    pub backlog: usize,
    /// Jobs accepted by a shard and not yet terminal.
    pub in_flight: usize,
    /// Jobs pinned to a shard awaiting keyed resolution after an
    /// indeterminate submit RPC.
    pub in_doubt: usize,
    /// Per-shard circuit-breaker states.
    pub circuits: Vec<Circuit>,
    /// Per-shard transport counters (zero for plain in-process shards).
    pub rpc: Vec<RpcSnapshot>,
    /// Coordinator journal recoveries this books has been through.
    pub fleet_recoveries: usize,
    /// Jobs moved by work stealing.
    pub steals: usize,
    /// Budget rebalance rounds executed.
    pub rebalances: usize,
    /// Jobs requeued after losing their shard incarnation.
    pub lost_requeues: usize,
    /// Pump rounds executed.
    pub rounds: u64,
    /// Placement policy name.
    pub placement: &'static str,
}

impl FleetMetrics {
    /// All admitted jobs accounted for and terminal.
    pub fn drained(&self) -> bool {
        self.jobs_done + self.jobs_dead_letter + self.jobs_rejected == self.jobs_total
    }
}

/// The coordinator.
pub struct Fleet {
    cfg: FleetConfig,
    shards: Vec<Box<dyn ShardBackend>>,
    router: Router,
    view: ShardView,
    /// Shard-local id -> fleet id, per shard.
    outstanding: Vec<BTreeMap<usize, FleetJobId>>,
    /// Last terminal count (`completed + dead_lettered`) folded per
    /// shard; a change triggers an outstanding sweep.
    folded_terminal: Vec<usize>,
    force_sweep: Vec<bool>,
    metrics_cache: Vec<ShardMetrics>,
    caps_w: Vec<f64>,
    rounds: u64,
    steals_total: usize,
    rebalances: usize,
    lost_requeues: usize,
    max_cap_sum_w: f64,
    next_key: u64,
    breakers: Vec<Breaker>,
    /// Last-seen fenced-reply count per shard, for FLT008 surfacing.
    fenced_seen: Vec<u64>,
    /// Write-ahead journal; dropped (with an FLT009 diagnostic) on the
    /// first write failure rather than stalling the fleet.
    log: Option<FleetLog>,
    /// Diagnostics raised while running: circuit opens (FLT007), fenced
    /// replies (FLT008), journal write failures (FLT009).
    chaos: Report,
    recoveries: usize,
}

impl Fleet {
    /// Build a coordinator over `shards` backends. Fails on `FLT0xx`
    /// lint errors or a backend-count mismatch.
    pub fn new(cfg: FleetConfig, shards: Vec<Box<dyn ShardBackend>>) -> Result<Fleet, String> {
        if shards.len() != cfg.shards {
            return Err(format!(
                "config says {} shards but {} backends were provided",
                cfg.shards,
                shards.len()
            ));
        }
        let report = cfg.lint();
        if report.has_errors() {
            return Err(format!(
                "fleet config failed lint:\n{}",
                report.render_human()
            ));
        }
        let n = cfg.shards;
        let log = match &cfg.journal_path {
            Some(path) => Some(
                FleetLog::create(path, n, cfg.cluster_cap_w)
                    .map_err(|e| format!("cannot create fleet journal {}: {e}", path.display()))?,
            ),
            None => None,
        };
        let router = Router::new(n, cfg.placement.build(n));
        let mut fleet = Fleet {
            router,
            view: ShardView::fresh(n),
            outstanding: vec![BTreeMap::new(); n],
            folded_terminal: vec![0; n],
            force_sweep: vec![false; n],
            metrics_cache: vec![ShardMetrics::default(); n],
            caps_w: vec![0.0; n],
            rounds: 0,
            steals_total: 0,
            rebalances: 0,
            lost_requeues: 0,
            max_cap_sum_w: 0.0,
            next_key: 0,
            breakers: vec![Breaker::new(); n],
            fenced_seen: vec![0; n],
            log,
            chaos: Report::new(),
            recoveries: 0,
            shards,
            cfg,
        };
        fleet.poll_shards();
        fleet.rebalance();
        Ok(fleet)
    }

    /// Rebuild a coordinator from its write-ahead journal after a crash
    /// (`corun fleet --recover`). The backends must address the same
    /// shards, in the same order, as the dead incarnation. Jobs the log
    /// proves submitted stay where they are; intent-without-confirm jobs
    /// come back pinned in doubt for keyed resolution; everything else
    /// is re-placed and resubmitted. Booked caps are restored so the
    /// cluster-cap invariant holds across the crash.
    pub fn recover(cfg: FleetConfig, shards: Vec<Box<dyn ShardBackend>>) -> Result<Fleet, String> {
        let path = cfg
            .journal_path
            .clone()
            .ok_or("fleet recovery requires a journal path")?;
        if shards.len() != cfg.shards {
            return Err(format!(
                "config says {} shards but {} backends were provided",
                cfg.shards,
                shards.len()
            ));
        }
        let report = cfg.lint();
        if report.has_errors() {
            return Err(format!(
                "fleet config failed lint:\n{}",
                report.render_human()
            ));
        }
        let scan = scan_fleetlog(&path);
        if scan.report.has_errors() {
            return Err(format!(
                "fleet journal {} is unrecoverable:\n{}",
                path.display(),
                scan.report.render_human()
            ));
        }
        let rec = replay_fleetlog(&scan.records)?;
        if rec.shards != cfg.shards {
            return Err(format!(
                "fleet journal books {} shards but config says {}",
                rec.shards, cfg.shards
            ));
        }
        let n = cfg.shards;
        let view = ShardView::fresh(n);
        let jobs: Vec<FleetJob> = rec
            .jobs
            .iter()
            .map(|j| FleetJob {
                key: j.key.clone(),
                spec: j.spec.clone(),
                loc: match j.loc {
                    // `Router::restore` re-places backlog jobs, so the
                    // stale shard index here is only a fallback.
                    RecoveredLoc::Pending => JobLoc::Backlog(0),
                    RecoveredLoc::InDoubt(s) => JobLoc::InDoubt(s),
                    RecoveredLoc::Submitted { shard, local_id } => {
                        JobLoc::Submitted { shard, local_id }
                    }
                    RecoveredLoc::Done(s) => JobLoc::Done(s),
                    RecoveredLoc::Dead(s) => JobLoc::DeadLetter(s),
                    RecoveredLoc::Rejected => JobLoc::Rejected,
                },
                submits: j.submits,
                requeues: j.requeues,
            })
            .collect();
        let next_key = jobs.len() as u64;
        let router = Router::restore(n, cfg.placement.build(n), jobs, &view);
        let mut outstanding = vec![BTreeMap::new(); n];
        for (id, j) in rec.jobs.iter().enumerate() {
            if let RecoveredLoc::Submitted { shard, local_id } = j.loc {
                outstanding[shard].insert(local_id, id);
            }
        }
        let caps_w = rec.caps_w.clone().unwrap_or_else(|| vec![0.0; n]);
        repair_fleetlog_tail(&path, &scan)
            .map_err(|e| format!("cannot repair fleet journal tail: {e}"))?;
        let mut log = FleetLog::open_append(&path, scan.records.len() as u64)
            .map_err(|e| format!("cannot reopen fleet journal: {e}"))?;
        log.append(&FleetRecord::Recovered)
            .map_err(|e| format!("cannot mark fleet journal recovered: {e}"))?;
        let max_cap_sum_w = caps_w.iter().sum();
        let mut fleet = Fleet {
            router,
            view,
            outstanding,
            folded_terminal: vec![0; n],
            // Every shard gets a full sweep: the books may trail what
            // shards finished while the coordinator was dead.
            force_sweep: vec![true; n],
            metrics_cache: vec![ShardMetrics::default(); n],
            caps_w,
            rounds: 0,
            steals_total: 0,
            rebalances: 0,
            lost_requeues: 0,
            max_cap_sum_w,
            next_key,
            breakers: vec![Breaker::new(); n],
            fenced_seen: vec![0; n],
            log: Some(log),
            chaos: scan.report,
            recoveries: rec.recoveries + 1,
            shards,
            cfg,
        };
        fleet.poll_shards();
        fleet.rebalance();
        Ok(fleet)
    }

    /// Durably append one journal record. A write failure does not stop
    /// the fleet: journaling is disabled and an FLT009 diagnostic is
    /// raised instead (the run keeps its in-memory books; only crash
    /// recovery is lost).
    fn log_rec(&mut self, rec: &FleetRecord) {
        let Some(log) = &mut self.log else { return };
        if let Err(e) = log.append(rec) {
            self.log = None;
            self.chaos.push(
                Diagnostic::new(
                    Code::Flt009,
                    "fleet journal",
                    format!("journal write failed, crash recovery disabled: {e}"),
                )
                .with_severity(Severity::Error),
            );
        }
    }

    /// Diagnostics raised while running (circuit opens, fenced replies,
    /// journal failures) plus any recovery-scan findings.
    pub fn chaos_report(&self) -> &Report {
        &self.chaos
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Admit a workload spec fragment to the fleet: each expanded job is
    /// placed independently by key. Returns the fleet job ids.
    pub fn submit_spec(&mut self, text: &str) -> Result<Vec<FleetJobId>, String> {
        let (lines, report) = corun_verify::lint_spec_full(text);
        if report.has_errors() {
            return Err(format!("spec failed lint:\n{}", report.render_human()));
        }
        let mut ids = Vec::new();
        for line in &lines {
            for _ in 0..line.count {
                let key = format!("{}x{}#{}", line.name, line.scale, self.next_key);
                self.next_key += 1;
                let spec = format!("{} x{}", line.name, line.scale);
                match self.router.admit(key.clone(), spec.clone(), &self.view) {
                    Ok(id) => {
                        self.log_rec(&FleetRecord::Admit { id, key, spec });
                        ids.push(id);
                    }
                    Err(_) => return Err("no live shard to place jobs on".into()),
                }
            }
        }
        Ok(ids)
    }

    /// One coordinator round; returns the number of jobs newly observed
    /// terminal. Cheap when nothing changed — callers loop this with a
    /// short sleep (see [`Fleet::drain`]).
    pub fn pump(&mut self) -> usize {
        self.rounds += 1;
        self.poll_shards();
        for s in 0..self.cfg.shards {
            if self.shards[s].take_incarnation_change() {
                // The shard restarted or recovered behind our back: its
                // local ids may now mean different jobs. Sweep everything
                // we think it holds against its (journal-recovered) books.
                self.force_sweep[s] = true;
            }
        }
        if self.cfg.auto_recover
            && self
                .rounds
                .is_multiple_of(self.cfg.recover_backoff_rounds.max(1))
            && (0..self.cfg.shards).any(|s| !self.view.alive[s])
        {
            let dead: Vec<usize> = (0..self.cfg.shards)
                .filter(|&s| !self.view.alive[s])
                .collect();
            for s in dead {
                let _ = self.recover_shard(s);
            }
        }
        if self.cfg.rebalance_every > 0
            && self.rounds.is_multiple_of(self.cfg.rebalance_every as u64)
        {
            self.rebalance();
        }
        self.evacuate_dead();
        let steals =
            self.router
                .auto_steal(&self.view, self.cfg.steal_threshold, self.cfg.steal_batch);
        self.steals_total += steals.iter().map(|s| s.moved).sum::<usize>();
        self.resolve_in_doubt();
        self.push_submissions();
        let folded = self.fold_completions();
        if self.cfg.paranoid {
            self.router.check_books();
        }
        debug_assert!(corun_core::respects_cluster_cap(
            &self.caps_w,
            self.cfg.cluster_cap_w
        ));
        folded
    }

    /// Pump until every admitted job is terminal or `timeout_s` elapses.
    pub fn drain(&mut self, timeout_s: f64) -> Result<FleetMetrics, String> {
        // corun-lint: allow(wall-clock) — operator-facing drain deadline, an I/O edge.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(timeout_s);
        loop {
            let folded = self.pump();
            if self.router.terminal() == self.router.jobs() {
                return Ok(self.metrics());
            }
            // corun-lint: allow(wall-clock) — operator-facing drain deadline, an I/O edge.
            if std::time::Instant::now() >= deadline {
                let m = self.metrics();
                return Err(format!(
                    "fleet did not drain within {timeout_s}s: {}/{} terminal \
                     ({} backlog, {} in flight)",
                    m.jobs_done + m.jobs_dead_letter + m.jobs_rejected,
                    m.jobs_total,
                    m.backlog,
                    m.in_flight
                ));
            }
            if folded == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    }

    /// Aggregated metrics.
    pub fn metrics(&self) -> FleetMetrics {
        let mut done = 0;
        let mut dead = 0;
        let mut rejected = 0;
        let mut backlog = 0;
        let mut in_flight = 0;
        let mut in_doubt = 0;
        for id in 0..self.router.jobs() {
            match self.router.job(id).loc {
                JobLoc::Done(_) => done += 1,
                JobLoc::DeadLetter(_) => dead += 1,
                JobLoc::Rejected => rejected += 1,
                JobLoc::Backlog(_) | JobLoc::Submitting(_) => backlog += 1,
                JobLoc::Submitted { .. } => in_flight += 1,
                JobLoc::InDoubt(_) => {
                    in_flight += 1;
                    in_doubt += 1;
                }
            }
        }
        let cap_sum_w = self.caps_w.iter().sum();
        FleetMetrics {
            shards: self.metrics_cache.clone(),
            alive: self.view.alive.clone(),
            caps_w: self.caps_w.clone(),
            cap_sum_w,
            max_cap_sum_w: self.max_cap_sum_w,
            cluster_cap_w: self.cfg.cluster_cap_w,
            jobs_total: self.router.jobs(),
            jobs_done: done,
            jobs_dead_letter: dead,
            jobs_rejected: rejected,
            backlog,
            in_flight,
            in_doubt,
            circuits: self.breakers.iter().map(|b| b.state).collect(),
            rpc: self.shards.iter().map(|s| s.rpc_stats()).collect(),
            fleet_recoveries: self.recoveries,
            steals: self.steals_total,
            rebalances: self.rebalances,
            lost_requeues: self.lost_requeues,
            rounds: self.rounds,
            placement: match self.cfg.placement {
                PlacementKind::Ring => "ring",
                PlacementKind::LeastLoaded => "least-loaded",
            },
        }
    }

    /// The router's books (tests poke at job states through this).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Force one shard through recovery: restart/reconnect it, then
    /// immediately rebalance so it runs under a freshly partitioned cap.
    pub fn recover_shard(&mut self, shard: usize) -> Result<(), String> {
        // Partition as if the shard were already back so its restart cap
        // is its post-recovery budget, not a stale one. Lower the other
        // live shards *first*: the recovering shard's new share may be
        // larger than what its death left reserved, and budget must be
        // freed before it is re-spent.
        let caps = self.partitioned_caps(Some(shard));
        self.assert_caps(&caps);
        for (s, &cap) in caps.iter().enumerate() {
            if s != shard && self.view.alive[s] && cap > 0.0 && cap < self.caps_w[s] {
                if self.shards[s].set_cap(cap).is_ok() {
                    self.caps_w[s] = cap;
                } else {
                    self.view.alive[s] = false;
                }
            }
        }
        self.shards[shard].recover(caps[shard])?;
        self.view.alive[shard] = true;
        self.breakers[shard] = Breaker::new();
        self.force_sweep[shard] = true;
        self.apply_caps(caps);
        self.rebalances += 1;
        Ok(())
    }

    /// Begin a graceful fleet-wide shutdown.
    pub fn begin_shutdown(&mut self) {
        for shard in &mut self.shards {
            shard.begin_shutdown();
        }
    }

    /// Finish shutdown (joins in-process shard workers).
    pub fn finish(&mut self) {
        for shard in &mut self.shards {
            shard.finish();
        }
    }

    /// Partition the cluster cap across shards, treating `treat_alive`
    /// (a shard mid-recovery) as live. A dead shard keeps its last
    /// booked cap *reserved* — it may merely be unreachable and still
    /// running under that cap — so only the remainder is split across
    /// the live shards. The returned vector carries the booked figure
    /// for dead shards, so its sum is the fleet-wide hand-out.
    fn partitioned_caps(&self, treat_alive: Option<usize>) -> Vec<f64> {
        let live = |s: usize| self.view.alive[s] || treat_alive == Some(s);
        let reserved: f64 = (0..self.cfg.shards)
            .filter(|&s| !live(s))
            .map(|s| self.caps_w[s])
            .sum();
        let available = (self.cfg.cluster_cap_w - reserved).max(0.0);
        let demands: Vec<ShardDemand> = (0..self.cfg.shards)
            .map(|s| {
                if live(s) {
                    ShardDemand::Up {
                        watts: self.metrics_cache[s].demand_jobs() as f64,
                    }
                } else {
                    ShardDemand::Down
                }
            })
            .collect();
        let mut caps = partition_cluster_cap(available, &demands, self.cfg.shard_floor_w);
        for (s, cap) in caps.iter_mut().enumerate() {
            if !live(s) {
                *cap = self.caps_w[s];
            }
        }
        caps
    }

    fn assert_caps(&self, caps: &[f64]) {
        let report = corun_verify::lint_shard_caps(caps, self.cfg.cluster_cap_w);
        assert!(
            report.is_empty(),
            "budget partition broke the cluster-cap invariant:\n{}",
            report.render_human()
        );
    }

    /// Push `caps` to live shards (skipping unchanged ones) and record
    /// the hand-out.
    fn apply_caps(&mut self, caps: Vec<f64>) {
        for (s, &cap) in caps.iter().enumerate() {
            if !self.view.alive[s] || cap <= 0.0 {
                continue;
            }
            if (cap - self.caps_w[s]).abs() < 1e-9 {
                continue;
            }
            if self.shards[s].set_cap(cap).is_err() {
                // Push failed: the shard is down; it holds its *old* cap,
                // so keep that figure on the books (conservative: the sum
                // of booked caps still bounds what shards may draw).
                self.view.alive[s] = false;
            }
        }
        let mut changed = false;
        for (s, &cap) in caps.iter().enumerate() {
            if self.view.alive[s] && (cap - self.caps_w[s]).abs() > 1e-9 {
                self.caps_w[s] = cap;
                changed = true;
            }
        }
        let sum: f64 = self.caps_w.iter().sum();
        self.max_cap_sum_w = self.max_cap_sum_w.max(sum);
        if changed {
            self.log_rec(&FleetRecord::Caps {
                caps_w: self.caps_w.clone(),
            });
        }
    }

    fn rebalance(&mut self) {
        let caps = self.partitioned_caps(None);
        self.assert_caps(&caps);
        self.apply_caps(caps);
        self.rebalances += 1;
    }

    fn poll_shards(&mut self) {
        for s in 0..self.cfg.shards {
            // An open circuit is only *probed* on its cadence; between
            // probes the shard stays fenced off without paying an RPC
            // timeout every round.
            let probe_due = self
                .rounds
                .saturating_sub(self.breakers[s].last_probe_round)
                >= self.cfg.probe_every_rounds.max(1);
            if self.breakers[s].state == Circuit::Dead && !probe_due {
                self.view.alive[s] = false;
            } else {
                self.breakers[s].last_probe_round = self.rounds;
                match self.shards[s].metrics() {
                    Ok(m) => {
                        // Transport healthy — even if every worker died,
                        // that is the *shard's* problem (journal recovery
                        // handles it), not the network's.
                        self.breakers[s].failures = 0;
                        self.breakers[s].state = Circuit::Live;
                        self.metrics_cache[s] = m;
                        self.view.alive[s] = m.is_alive();
                    }
                    Err(_) => {
                        self.view.alive[s] = false;
                        self.breaker_trip(s);
                    }
                }
            }
            self.surface_fenced(s);
            self.view.load[s] = self.router.backlog_depth(s)
                + if self.view.alive[s] {
                    self.metrics_cache[s].queue_depth
                } else {
                    0
                };
        }
    }

    /// Record one transport failure against `s`'s breaker, opening the
    /// circuit (with an FLT007 diagnostic) at the configured threshold.
    fn breaker_trip(&mut self, s: usize) {
        let b = &mut self.breakers[s];
        b.failures = b.failures.saturating_add(1);
        if b.failures >= self.cfg.dead_after {
            if b.state != Circuit::Dead {
                b.state = Circuit::Dead;
                self.chaos.push(Diagnostic::new(
                    Code::Flt007,
                    format!("shard {s}"),
                    format!(
                        "circuit opened after {} consecutive transport failures; \
                         probing every {} rounds",
                        b.failures, self.cfg.probe_every_rounds
                    ),
                ));
            }
        } else if b.failures >= self.cfg.suspect_after {
            b.state = Circuit::Suspect;
        }
    }

    /// Raise FLT008 when a shard's transport rejected stale-epoch
    /// replies since the last poll.
    fn surface_fenced(&mut self, s: usize) {
        let fenced = self.shards[s].rpc_stats().fenced;
        if fenced > self.fenced_seen[s] {
            self.chaos.push(Diagnostic::new(
                Code::Flt008,
                format!("shard {s}"),
                format!(
                    "{} stale-epoch repl{} rejected by fencing",
                    fenced - self.fenced_seen[s],
                    if fenced - self.fenced_seen[s] == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                ),
            ));
            self.fenced_seen[s] = fenced;
        }
    }

    /// Move backlog away from dead shards while anything else is live.
    fn evacuate_dead(&mut self) {
        if !self.view.alive.iter().any(|&a| a) {
            return;
        }
        for s in 0..self.cfg.shards {
            if !self.view.alive[s] && self.router.backlog_depth(s) > 0 {
                self.router.evacuate_backlog(s, &self.view);
            }
        }
    }

    fn push_submissions(&mut self) {
        for s in 0..self.cfg.shards {
            if !self.view.alive[s] {
                continue;
            }
            let mut queued_estimate = self.metrics_cache[s].queue_depth;
            for _ in 0..self.cfg.submit_burst {
                if queued_estimate >= self.cfg.queue_high_water {
                    break;
                }
                let Some(id) = self.router.begin_submit(s) else {
                    break;
                };
                let key = self.router.job(id).key.clone();
                let spec = self.router.job(id).spec.clone();
                // Intent is journaled *before* the RPC: if the
                // coordinator dies in between, recovery sees intent
                // without confirm and resolves the job against this
                // shard instead of guessing.
                self.log_rec(&FleetRecord::Intent { id, shard: s });
                match self.shards[s].submit(&key, &spec) {
                    SubmitOutcome::Accepted(local_ids) => {
                        assert_eq!(
                            local_ids.len(),
                            1,
                            "fleet specs are single-job lines, got {} ids",
                            local_ids.len()
                        );
                        self.router.confirm(id, local_ids[0]);
                        self.outstanding[s].insert(local_ids[0], id);
                        self.log_rec(&FleetRecord::Confirm {
                            id,
                            shard: s,
                            local_id: local_ids[0],
                        });
                        queued_estimate += 1;
                    }
                    SubmitOutcome::Backpressure { .. } => {
                        self.router.abort(id);
                        self.log_rec(&FleetRecord::Abort { id });
                        break;
                    }
                    SubmitOutcome::Refused(_) => {
                        self.router.reject(id);
                        self.log_rec(&FleetRecord::Rejected { id });
                    }
                    SubmitOutcome::Down(_) => {
                        // Certainly undelivered: safe to re-place.
                        self.router.abort(id);
                        self.log_rec(&FleetRecord::Abort { id });
                        self.view.alive[s] = false;
                        self.breaker_trip(s);
                        break;
                    }
                    SubmitOutcome::Indeterminate(_) => {
                        // The request may have landed. Pin the job to
                        // this shard; `resolve_in_doubt` settles it by
                        // keyed resubmission.
                        self.router.mark_in_doubt(id);
                        self.breaker_trip(s);
                        break;
                    }
                }
            }
        }
    }

    /// Settle in-doubt jobs by resubmitting their key to the pinned
    /// shard. A dedup hit proves the original RPC landed (the shard
    /// answers with the existing ids); a fresh accept proves it did not
    /// and admits the one and only copy. Either way exactly one copy
    /// exists, which is the no-double-dispatch invariant.
    fn resolve_in_doubt(&mut self) {
        for s in 0..self.cfg.shards {
            if !self.view.alive[s] {
                continue;
            }
            for id in self.router.in_doubt(s) {
                let key = self.router.job(id).key.clone();
                let spec = self.router.job(id).spec.clone();
                match self.shards[s].submit(&key, &spec) {
                    SubmitOutcome::Accepted(local_ids) => {
                        assert_eq!(local_ids.len(), 1, "keyed submits are single-job");
                        self.router.resolve_confirm(id, local_ids[0]);
                        self.outstanding[s].insert(local_ids[0], id);
                        self.log_rec(&FleetRecord::Confirm {
                            id,
                            shard: s,
                            local_id: local_ids[0],
                        });
                        // The job may already be terminal on the shard
                        // (it ran while we were partitioned): sweep.
                        self.force_sweep[s] = true;
                    }
                    SubmitOutcome::Refused(_) => {
                        // The shard's dedup would have answered with the
                        // original ids had the first RPC landed, so it
                        // cannot have: terminal rejection.
                        self.router.resolve_reject(id);
                        self.log_rec(&FleetRecord::Rejected { id });
                    }
                    SubmitOutcome::Backpressure { .. } => break,
                    SubmitOutcome::Down(_) => {
                        self.view.alive[s] = false;
                        self.breaker_trip(s);
                        break;
                    }
                    SubmitOutcome::Indeterminate(_) => {
                        self.breaker_trip(s);
                        break;
                    }
                }
            }
        }
    }

    /// Sweep shards whose terminal counters moved and fold job fates
    /// into the router. Returns how many jobs left the outstanding set.
    fn fold_completions(&mut self) -> usize {
        let mut folded = 0;
        for s in 0..self.cfg.shards {
            if !self.view.alive[s] {
                continue;
            }
            let terminal = self.metrics_cache[s].completed + self.metrics_cache[s].dead_lettered;
            if terminal == self.folded_terminal[s] && !self.force_sweep[s] {
                continue;
            }
            self.force_sweep[s] = false;
            let locals: Vec<usize> = self.outstanding[s].keys().copied().collect();
            for local in locals {
                let Ok(phase) = self.shards[s].job_phase(local) else {
                    self.view.alive[s] = false;
                    self.breaker_trip(s);
                    break;
                };
                let id = self.outstanding[s][&local];
                match phase {
                    JobPhase::Pending => {}
                    JobPhase::Done => {
                        self.router.complete(id, s);
                        self.outstanding[s].remove(&local);
                        self.log_rec(&FleetRecord::Done { id });
                        folded += 1;
                    }
                    JobPhase::DeadLetter => {
                        self.router.dead_letter(id, s);
                        self.outstanding[s].remove(&local);
                        self.log_rec(&FleetRecord::Dead { id });
                        folded += 1;
                    }
                    JobPhase::Rejected => {
                        // A shard cannot reject after accepting — but a
                        // recovered journal may surface it; count it as
                        // dead-lettered so the job is terminal, not lost.
                        debug_assert!(false, "job {id} rejected after acceptance");
                        self.router.dead_letter(id, s);
                        self.outstanding[s].remove(&local);
                        self.log_rec(&FleetRecord::Dead { id });
                        folded += 1;
                    }
                    JobPhase::Unknown => {
                        // This incarnation never heard of the id: the old
                        // one died without a journal. Route it again.
                        self.router.requeue_lost(id, &self.view);
                        self.outstanding[s].remove(&local);
                        self.log_rec(&FleetRecord::Requeue { id });
                        self.lost_requeues += 1;
                        folded += 1;
                    }
                }
            }
            self.folded_terminal[s] = terminal;
        }
        folded
    }
}
