//! The fleet coordinator: placement, submission pumping, completion
//! tracking, work stealing, budget rebalancing, and shard recovery.
//!
//! The coordinator is deliberately a *polling* loop ([`Fleet::pump`])
//! rather than a callback web: every round it refreshes its view of the
//! shards, rebalances the cluster power budget on its cadence, steals
//! backlog between imbalanced shards, pushes submissions, and folds
//! terminal job states back into the [`Router`]. One thread drives
//! thousands of simulated machines this way; the shards do the heavy
//! lifting on their own worker threads (in-process mode) or in separate
//! daemons (remote mode).

use crate::placement::{HashRing, LeastLoaded, Placement, ShardView};
use crate::router::{FleetJobId, JobLoc, Router};
use crate::shard::{JobPhase, ShardBackend, ShardMetrics, SubmitOutcome};
use corun_core::budget::{partition_cluster_cap, ShardDemand};
use std::collections::BTreeMap;

/// Which placement policy the coordinator routes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    /// Consistent-hash ring by job key, least-loaded only as liveness
    /// fallback.
    Ring,
    /// Always the live shard with the shallowest load.
    LeastLoaded,
}

impl PlacementKind {
    fn build(self, shards: usize) -> Box<dyn Placement> {
        match self {
            PlacementKind::Ring => Box::new(HashRing::new(shards)),
            PlacementKind::LeastLoaded => Box::new(LeastLoaded),
        }
    }

    /// Parse `"ring"` / `"least-loaded"`.
    pub fn parse(s: &str) -> Result<PlacementKind, String> {
        match s {
            "ring" => Ok(PlacementKind::Ring),
            "least-loaded" => Ok(PlacementKind::LeastLoaded),
            other => Err(format!(
                "unknown placement `{other}` (expected `ring` or `least-loaded`)"
            )),
        }
    }
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard count (must match the backend vector handed to
    /// [`Fleet::new`]).
    pub shards: usize,
    /// Simulated machines per shard (topology metadata for lints and
    /// status output; the backends themselves define the truth).
    pub machines_per_shard: usize,
    /// The datacenter power cap partitioned across shards, watts.
    pub cluster_cap_w: f64,
    /// Minimum cap every live shard keeps, watts.
    pub shard_floor_w: f64,
    /// Queue-depth spread (max - min over live shards) that triggers
    /// work stealing.
    pub steal_threshold: usize,
    /// Max jobs one steal moves.
    pub steal_batch: usize,
    /// Rounds between budget rebalances.
    pub rebalance_every: usize,
    /// Stop submitting to a shard once its observed queue depth reaches
    /// this many jobs.
    pub queue_high_water: usize,
    /// Max submissions pushed to one shard in one round.
    pub submit_burst: usize,
    /// Placement policy.
    pub placement: PlacementKind,
    /// Re-dial / restart dead shards automatically every
    /// `recover_backoff_rounds`.
    pub auto_recover: bool,
    /// Rounds between automatic recovery attempts for a dead shard.
    pub recover_backoff_rounds: u64,
    /// Run `Router::check_books` every round (O(jobs); tests only).
    pub paranoid: bool,
}

impl FleetConfig {
    /// Defaults sized for in-process fleets.
    pub fn new(shards: usize, machines_per_shard: usize, cluster_cap_w: f64) -> FleetConfig {
        FleetConfig {
            shards,
            machines_per_shard,
            cluster_cap_w,
            shard_floor_w: 5.0,
            steal_threshold: 8,
            steal_batch: 32,
            rebalance_every: 4,
            queue_high_water: 48,
            submit_burst: 16,
            placement: PlacementKind::Ring,
            auto_recover: true,
            recover_backoff_rounds: 10,
            paranoid: false,
        }
    }

    /// The `FLT0xx` lint view of this config.
    pub fn lint(&self) -> corun_verify::Report {
        corun_verify::lint_fleet(&corun_verify::FleetParams {
            shards: self.shards,
            machines_per_shard: self.machines_per_shard,
            cluster_cap_w: self.cluster_cap_w,
            shard_floor_w: self.shard_floor_w,
            steal_threshold: self.steal_threshold,
            rebalance_every: self.rebalance_every,
        })
    }
}

/// Aggregated fleet metrics (`corun fleet` surfaces these).
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    /// Per-shard snapshots (last successful poll for dead shards).
    pub shards: Vec<ShardMetrics>,
    /// Per-shard liveness.
    pub alive: Vec<bool>,
    /// Per-shard caps from the last rebalance, watts.
    pub caps_w: Vec<f64>,
    /// Sum of the live caps, watts.
    pub cap_sum_w: f64,
    /// Largest cap sum ever handed out, watts (must stay within the
    /// cluster cap — the smoke test asserts it).
    pub max_cap_sum_w: f64,
    /// The cluster cap, watts.
    pub cluster_cap_w: f64,
    /// Jobs admitted to the fleet.
    pub jobs_total: usize,
    /// Jobs finished.
    pub jobs_done: usize,
    /// Jobs dead-lettered by their shard.
    pub jobs_dead_letter: usize,
    /// Jobs rejected (lint / infeasible).
    pub jobs_rejected: usize,
    /// Jobs waiting in coordinator backlogs.
    pub backlog: usize,
    /// Jobs accepted by a shard and not yet terminal.
    pub in_flight: usize,
    /// Jobs moved by work stealing.
    pub steals: usize,
    /// Budget rebalance rounds executed.
    pub rebalances: usize,
    /// Jobs requeued after losing their shard incarnation.
    pub lost_requeues: usize,
    /// Pump rounds executed.
    pub rounds: u64,
    /// Placement policy name.
    pub placement: &'static str,
}

impl FleetMetrics {
    /// All admitted jobs accounted for and terminal.
    pub fn drained(&self) -> bool {
        self.jobs_done + self.jobs_dead_letter + self.jobs_rejected == self.jobs_total
    }
}

/// The coordinator.
pub struct Fleet {
    cfg: FleetConfig,
    shards: Vec<Box<dyn ShardBackend>>,
    router: Router,
    view: ShardView,
    /// Shard-local id -> fleet id, per shard.
    outstanding: Vec<BTreeMap<usize, FleetJobId>>,
    /// Last terminal count (`completed + dead_lettered`) folded per
    /// shard; a change triggers an outstanding sweep.
    folded_terminal: Vec<usize>,
    force_sweep: Vec<bool>,
    metrics_cache: Vec<ShardMetrics>,
    caps_w: Vec<f64>,
    rounds: u64,
    steals_total: usize,
    rebalances: usize,
    lost_requeues: usize,
    max_cap_sum_w: f64,
    next_key: u64,
}

impl Fleet {
    /// Build a coordinator over `shards` backends. Fails on `FLT0xx`
    /// lint errors or a backend-count mismatch.
    pub fn new(cfg: FleetConfig, shards: Vec<Box<dyn ShardBackend>>) -> Result<Fleet, String> {
        if shards.len() != cfg.shards {
            return Err(format!(
                "config says {} shards but {} backends were provided",
                cfg.shards,
                shards.len()
            ));
        }
        let report = cfg.lint();
        if report.has_errors() {
            return Err(format!(
                "fleet config failed lint:\n{}",
                report.render_human()
            ));
        }
        let n = cfg.shards;
        let router = Router::new(n, cfg.placement.build(n));
        let mut fleet = Fleet {
            router,
            view: ShardView::fresh(n),
            outstanding: vec![BTreeMap::new(); n],
            folded_terminal: vec![0; n],
            force_sweep: vec![false; n],
            metrics_cache: vec![ShardMetrics::default(); n],
            caps_w: vec![0.0; n],
            rounds: 0,
            steals_total: 0,
            rebalances: 0,
            lost_requeues: 0,
            max_cap_sum_w: 0.0,
            next_key: 0,
            shards,
            cfg,
        };
        fleet.poll_shards();
        fleet.rebalance();
        Ok(fleet)
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Admit a workload spec fragment to the fleet: each expanded job is
    /// placed independently by key. Returns the fleet job ids.
    pub fn submit_spec(&mut self, text: &str) -> Result<Vec<FleetJobId>, String> {
        let (lines, report) = corun_verify::lint_spec_full(text);
        if report.has_errors() {
            return Err(format!("spec failed lint:\n{}", report.render_human()));
        }
        let mut ids = Vec::new();
        for line in &lines {
            for _ in 0..line.count {
                let key = format!("{}x{}#{}", line.name, line.scale, self.next_key);
                self.next_key += 1;
                let spec = format!("{} x{}", line.name, line.scale);
                match self.router.admit(key, spec, &self.view) {
                    Ok(id) => ids.push(id),
                    Err(_) => return Err("no live shard to place jobs on".into()),
                }
            }
        }
        Ok(ids)
    }

    /// One coordinator round; returns the number of jobs newly observed
    /// terminal. Cheap when nothing changed — callers loop this with a
    /// short sleep (see [`Fleet::drain`]).
    pub fn pump(&mut self) -> usize {
        self.rounds += 1;
        self.poll_shards();
        if self.cfg.auto_recover
            && self
                .rounds
                .is_multiple_of(self.cfg.recover_backoff_rounds.max(1))
            && (0..self.cfg.shards).any(|s| !self.view.alive[s])
        {
            let dead: Vec<usize> = (0..self.cfg.shards)
                .filter(|&s| !self.view.alive[s])
                .collect();
            for s in dead {
                let _ = self.recover_shard(s);
            }
        }
        if self.cfg.rebalance_every > 0
            && self.rounds.is_multiple_of(self.cfg.rebalance_every as u64)
        {
            self.rebalance();
        }
        self.evacuate_dead();
        let steals =
            self.router
                .auto_steal(&self.view, self.cfg.steal_threshold, self.cfg.steal_batch);
        self.steals_total += steals.iter().map(|s| s.moved).sum::<usize>();
        self.push_submissions();
        let folded = self.fold_completions();
        if self.cfg.paranoid {
            self.router.check_books();
        }
        debug_assert!(corun_core::respects_cluster_cap(
            &self.caps_w,
            self.cfg.cluster_cap_w
        ));
        folded
    }

    /// Pump until every admitted job is terminal or `timeout_s` elapses.
    pub fn drain(&mut self, timeout_s: f64) -> Result<FleetMetrics, String> {
        // corun-lint: allow(wall-clock) — operator-facing drain deadline, an I/O edge.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(timeout_s);
        loop {
            let folded = self.pump();
            if self.router.terminal() == self.router.jobs() {
                return Ok(self.metrics());
            }
            // corun-lint: allow(wall-clock) — operator-facing drain deadline, an I/O edge.
            if std::time::Instant::now() >= deadline {
                let m = self.metrics();
                return Err(format!(
                    "fleet did not drain within {timeout_s}s: {}/{} terminal \
                     ({} backlog, {} in flight)",
                    m.jobs_done + m.jobs_dead_letter + m.jobs_rejected,
                    m.jobs_total,
                    m.backlog,
                    m.in_flight
                ));
            }
            if folded == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    }

    /// Aggregated metrics.
    pub fn metrics(&self) -> FleetMetrics {
        let mut done = 0;
        let mut dead = 0;
        let mut rejected = 0;
        let mut backlog = 0;
        let mut in_flight = 0;
        for id in 0..self.router.jobs() {
            match self.router.job(id).loc {
                JobLoc::Done(_) => done += 1,
                JobLoc::DeadLetter(_) => dead += 1,
                JobLoc::Rejected => rejected += 1,
                JobLoc::Backlog(_) | JobLoc::Submitting(_) => backlog += 1,
                JobLoc::Submitted { .. } => in_flight += 1,
            }
        }
        let cap_sum_w = self.caps_w.iter().sum();
        FleetMetrics {
            shards: self.metrics_cache.clone(),
            alive: self.view.alive.clone(),
            caps_w: self.caps_w.clone(),
            cap_sum_w,
            max_cap_sum_w: self.max_cap_sum_w,
            cluster_cap_w: self.cfg.cluster_cap_w,
            jobs_total: self.router.jobs(),
            jobs_done: done,
            jobs_dead_letter: dead,
            jobs_rejected: rejected,
            backlog,
            in_flight,
            steals: self.steals_total,
            rebalances: self.rebalances,
            lost_requeues: self.lost_requeues,
            rounds: self.rounds,
            placement: match self.cfg.placement {
                PlacementKind::Ring => "ring",
                PlacementKind::LeastLoaded => "least-loaded",
            },
        }
    }

    /// The router's books (tests poke at job states through this).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Force one shard through recovery: restart/reconnect it, then
    /// immediately rebalance so it runs under a freshly partitioned cap.
    pub fn recover_shard(&mut self, shard: usize) -> Result<(), String> {
        // Partition as if the shard were already back so its restart cap
        // is its post-recovery budget, not a stale one. Lower the other
        // live shards *first*: the recovering shard's new share may be
        // larger than what its death left reserved, and budget must be
        // freed before it is re-spent.
        let caps = self.partitioned_caps(Some(shard));
        self.assert_caps(&caps);
        for (s, &cap) in caps.iter().enumerate() {
            if s != shard && self.view.alive[s] && cap > 0.0 && cap < self.caps_w[s] {
                if self.shards[s].set_cap(cap).is_ok() {
                    self.caps_w[s] = cap;
                } else {
                    self.view.alive[s] = false;
                }
            }
        }
        self.shards[shard].recover(caps[shard])?;
        self.view.alive[shard] = true;
        self.force_sweep[shard] = true;
        self.apply_caps(caps);
        self.rebalances += 1;
        Ok(())
    }

    /// Begin a graceful fleet-wide shutdown.
    pub fn begin_shutdown(&mut self) {
        for shard in &mut self.shards {
            shard.begin_shutdown();
        }
    }

    /// Finish shutdown (joins in-process shard workers).
    pub fn finish(&mut self) {
        for shard in &mut self.shards {
            shard.finish();
        }
    }

    /// Partition the cluster cap across shards, treating `treat_alive`
    /// (a shard mid-recovery) as live. A dead shard keeps its last
    /// booked cap *reserved* — it may merely be unreachable and still
    /// running under that cap — so only the remainder is split across
    /// the live shards. The returned vector carries the booked figure
    /// for dead shards, so its sum is the fleet-wide hand-out.
    fn partitioned_caps(&self, treat_alive: Option<usize>) -> Vec<f64> {
        let live = |s: usize| self.view.alive[s] || treat_alive == Some(s);
        let reserved: f64 = (0..self.cfg.shards)
            .filter(|&s| !live(s))
            .map(|s| self.caps_w[s])
            .sum();
        let available = (self.cfg.cluster_cap_w - reserved).max(0.0);
        let demands: Vec<ShardDemand> = (0..self.cfg.shards)
            .map(|s| {
                if live(s) {
                    ShardDemand::Up {
                        watts: self.metrics_cache[s].demand_jobs() as f64,
                    }
                } else {
                    ShardDemand::Down
                }
            })
            .collect();
        let mut caps = partition_cluster_cap(available, &demands, self.cfg.shard_floor_w);
        for (s, cap) in caps.iter_mut().enumerate() {
            if !live(s) {
                *cap = self.caps_w[s];
            }
        }
        caps
    }

    fn assert_caps(&self, caps: &[f64]) {
        let report = corun_verify::lint_shard_caps(caps, self.cfg.cluster_cap_w);
        assert!(
            report.is_empty(),
            "budget partition broke the cluster-cap invariant:\n{}",
            report.render_human()
        );
    }

    /// Push `caps` to live shards (skipping unchanged ones) and record
    /// the hand-out.
    fn apply_caps(&mut self, caps: Vec<f64>) {
        for (s, &cap) in caps.iter().enumerate() {
            if !self.view.alive[s] || cap <= 0.0 {
                continue;
            }
            if (cap - self.caps_w[s]).abs() < 1e-9 {
                continue;
            }
            if self.shards[s].set_cap(cap).is_err() {
                // Push failed: the shard is down; it holds its *old* cap,
                // so keep that figure on the books (conservative: the sum
                // of booked caps still bounds what shards may draw).
                self.view.alive[s] = false;
            }
        }
        for (s, &cap) in caps.iter().enumerate() {
            if self.view.alive[s] {
                self.caps_w[s] = cap;
            }
        }
        let sum: f64 = self.caps_w.iter().sum();
        self.max_cap_sum_w = self.max_cap_sum_w.max(sum);
    }

    fn rebalance(&mut self) {
        let caps = self.partitioned_caps(None);
        self.assert_caps(&caps);
        self.apply_caps(caps);
        self.rebalances += 1;
    }

    fn poll_shards(&mut self) {
        for s in 0..self.cfg.shards {
            match self.shards[s].metrics() {
                Ok(m) => {
                    let was_alive = self.view.alive[s];
                    self.metrics_cache[s] = m;
                    self.view.alive[s] = m.is_alive();
                    if was_alive && !m.is_alive() {
                        // All workers gone: in-flight work is frozen, not
                        // lost — journal recovery (recover_shard) brings
                        // it back. Keep outstanding until then.
                    }
                }
                Err(_) => {
                    self.view.alive[s] = false;
                }
            }
            self.view.load[s] = self.router.backlog_depth(s)
                + if self.view.alive[s] {
                    self.metrics_cache[s].queue_depth
                } else {
                    0
                };
        }
    }

    /// Move backlog away from dead shards while anything else is live.
    fn evacuate_dead(&mut self) {
        if !self.view.alive.iter().any(|&a| a) {
            return;
        }
        for s in 0..self.cfg.shards {
            if !self.view.alive[s] && self.router.backlog_depth(s) > 0 {
                self.router.evacuate_backlog(s, &self.view);
            }
        }
    }

    fn push_submissions(&mut self) {
        for s in 0..self.cfg.shards {
            if !self.view.alive[s] {
                continue;
            }
            let mut queued_estimate = self.metrics_cache[s].queue_depth;
            for _ in 0..self.cfg.submit_burst {
                if queued_estimate >= self.cfg.queue_high_water {
                    break;
                }
                let Some(id) = self.router.begin_submit(s) else {
                    break;
                };
                let spec = self.router.job(id).spec.clone();
                match self.shards[s].submit(&spec) {
                    SubmitOutcome::Accepted(local_ids) => {
                        assert_eq!(
                            local_ids.len(),
                            1,
                            "fleet specs are single-job lines, got {} ids",
                            local_ids.len()
                        );
                        self.router.confirm(id, local_ids[0]);
                        self.outstanding[s].insert(local_ids[0], id);
                        queued_estimate += 1;
                    }
                    SubmitOutcome::Backpressure { .. } => {
                        self.router.abort(id);
                        break;
                    }
                    SubmitOutcome::Refused(_) => {
                        self.router.reject(id);
                    }
                    SubmitOutcome::Down(_) => {
                        self.router.abort(id);
                        self.view.alive[s] = false;
                        break;
                    }
                }
            }
        }
    }

    /// Sweep shards whose terminal counters moved and fold job fates
    /// into the router. Returns how many jobs left the outstanding set.
    fn fold_completions(&mut self) -> usize {
        let mut folded = 0;
        for s in 0..self.cfg.shards {
            if !self.view.alive[s] {
                continue;
            }
            let terminal = self.metrics_cache[s].completed + self.metrics_cache[s].dead_lettered;
            if terminal == self.folded_terminal[s] && !self.force_sweep[s] {
                continue;
            }
            self.force_sweep[s] = false;
            let locals: Vec<usize> = self.outstanding[s].keys().copied().collect();
            for local in locals {
                let Ok(phase) = self.shards[s].job_phase(local) else {
                    self.view.alive[s] = false;
                    break;
                };
                let id = self.outstanding[s][&local];
                match phase {
                    JobPhase::Pending => {}
                    JobPhase::Done => {
                        self.router.complete(id, s);
                        self.outstanding[s].remove(&local);
                        folded += 1;
                    }
                    JobPhase::DeadLetter => {
                        self.router.dead_letter(id, s);
                        self.outstanding[s].remove(&local);
                        folded += 1;
                    }
                    JobPhase::Rejected => {
                        // A shard cannot reject after accepting — but a
                        // recovered journal may surface it; count it as
                        // dead-lettered so the job is terminal, not lost.
                        debug_assert!(false, "job {id} rejected after acceptance");
                        self.router.dead_letter(id, s);
                        self.outstanding[s].remove(&local);
                        folded += 1;
                    }
                    JobPhase::Unknown => {
                        // This incarnation never heard of the id: the old
                        // one died without a journal. Route it again.
                        self.router.requeue_lost(id, &self.view);
                        self.outstanding[s].remove(&local);
                        self.lost_requeues += 1;
                        folded += 1;
                    }
                }
            }
            self.folded_terminal[s] = terminal;
        }
        folded
    }
}
