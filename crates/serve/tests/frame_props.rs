//! Property tests for the line-JSON frame codec: whatever bytes arrive
//! — clean frames, a stream truncated mid-frame, duplicated segments,
//! or pure garbage — [`read_frame`] must never panic, never return a
//! line longer than its byte bound, never lose a complete frame that
//! was fully delivered, and always resynchronize at the next newline.
//! These are the exact guarantees the fleet transport leans on when a
//! fault plan truncates or duplicates replies (`corun-fleet::net`).

use corun_serve::{read_frame, Frame, Json};
use proptest::prelude::*;
use std::io::Cursor;

/// Small bound so the bound-enforcement path is actually exercised.
const BOUND: usize = 64;

/// Drain a byte stream through the codec until EOF.
fn read_all(bytes: &[u8], max: usize) -> Vec<Frame> {
    let mut reader = Cursor::new(bytes.to_vec());
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut reader, max).expect("in-memory reads cannot fail") {
            Frame::Eof => return frames,
            f => frames.push(f),
        }
    }
}

/// Newline-free printable payload lines, all within `BOUND`.
fn lines() -> impl Strategy<Value = Vec<String>> {
    collection::vec("[ -~]{0,40}", 0..10)
}

fn encode(lines: &[String]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for l in lines {
        bytes.extend_from_slice(l.as_bytes());
        bytes.push(b'\n');
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// A clean stream decodes to exactly the frames that were encoded.
    #[test]
    fn round_trip(lines in lines()) {
        let frames = read_all(&encode(&lines), BOUND);
        prop_assert_eq!(frames.len(), lines.len());
        for (frame, line) in frames.iter().zip(&lines) {
            prop_assert_eq!(frame, &Frame::Line(line.clone()));
        }
    }

    /// Truncation loses at most the torn tail: every frame whose
    /// newline made it through is decoded intact, and the dangling
    /// fragment (if any) is a prefix of the cut line — never a
    /// fabricated or merged frame.
    #[test]
    fn truncation_keeps_every_complete_frame(lines in lines(), cut in any::<usize>()) {
        let bytes = encode(&lines);
        let cut = cut % (bytes.len() + 1);
        let complete = bytes[..cut].iter().filter(|&&b| b == b'\n').count();
        let frames = read_all(&bytes[..cut], BOUND);

        prop_assert!(frames.len() >= complete, "lost a fully delivered frame");
        prop_assert!(frames.len() <= complete + 1, "fabricated a frame");
        for (frame, line) in frames.iter().take(complete).zip(&lines) {
            prop_assert_eq!(frame, &Frame::Line(line.clone()));
        }
        if frames.len() == complete + 1 {
            match &frames[complete] {
                Frame::Line(tail) => prop_assert!(
                    lines[complete].starts_with(tail.as_str()),
                    "torn tail {tail:?} is not a prefix of {:?}", lines[complete]
                ),
                other => prop_assert!(false, "unexpected tail frame {other:?}"),
            }
        }
    }

    /// A duplicated stream (replayed segment, duplicated replies)
    /// decodes to the duplicated frames — duplication never desyncs the
    /// framing; the dedup decision belongs to the layer above.
    #[test]
    fn duplication_never_desyncs(lines in lines()) {
        let once = encode(&lines);
        let mut twice = once.clone();
        twice.extend_from_slice(&once);
        let frames = read_all(&twice, BOUND);
        prop_assert_eq!(frames.len(), 2 * lines.len());
        for (frame, line) in frames.iter().zip(lines.iter().chain(&lines)) {
            prop_assert_eq!(frame, &Frame::Line(line.clone()));
        }
    }

    /// Garbage bytes never produce an over-bound line, never panic the
    /// codec (including invalid UTF-8), and never poison the stream: a
    /// well-formed frame after the garbage is still decoded.
    #[test]
    fn garbage_is_bounded_and_resyncs(garbage in collection::vec(any::<u8>(), 0..256)) {
        let mut bytes = garbage;
        bytes.push(b'\n');
        bytes.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let frames = read_all(&bytes, BOUND);

        for frame in &frames {
            if let Frame::Line(l) = frame {
                prop_assert!(l.len() <= BOUND * 4, "line escaped the byte bound: {} bytes", l.len());
            }
        }
        prop_assert_eq!(
            frames.last(),
            Some(&Frame::Line("{\"op\":\"ping\"}".into())),
            "codec failed to resync after garbage"
        );
    }

    /// The JSON layer above the codec also survives arbitrary bytes:
    /// parsing garbage returns an error, it never panics.
    #[test]
    fn json_parse_never_panics(garbage in collection::vec(any::<u8>(), 0..128)) {
        let text = String::from_utf8_lossy(&garbage).into_owned();
        let _ = Json::parse(&text);
    }
}
