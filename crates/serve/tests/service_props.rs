//! Property tests: bursty arrival sequences against the in-process
//! service. Whatever the burst shape, the dispatcher must neither lose,
//! drop, nor double-dispatch a job, and every accepted job must complete.

use corun_serve::{JobState, Service, ServiceConfig, SubmitError};
use proptest::prelude::*;

const PROGRAMS: [&str; 4] = ["srad", "lud", "hotspot", "dwt2d"];
const SCALES: [&str; 3] = ["0.05", "0.1", "0.15"];

/// One submission in an arrival sequence: which program, how scaled, and
/// how many copies arrive in the same request (a `*COUNT` burst).
#[derive(Debug, Clone)]
struct Burst {
    program: usize,
    scale: usize,
    count: usize,
}

impl Burst {
    fn spec_line(&self) -> String {
        format!(
            "{} x{} *{}",
            PROGRAMS[self.program % PROGRAMS.len()],
            SCALES[self.scale % SCALES.len()],
            self.count
        )
    }
}

fn tiny_service(queue_capacity: usize, machines: usize) -> Service {
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let mut cfg = ServiceConfig::fast(&machine);
    cfg.characterization.grid_points = 3;
    cfg.characterization.micro_duration_s = 1.0;
    cfg.queue_capacity = queue_capacity;
    cfg.machines = machines;
    Service::start(cfg)
}

proptest! {
    // Each case starts a full service (characterization + workers), so
    // keep the count modest; the burst space is still explored across
    // seeds because cases are seeded deterministically per index.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bursty_arrivals_lose_nothing(
        bursts in collection::vec(
            (0usize..4, 0usize..3, 1usize..4).prop_map(|(program, scale, count)| Burst {
                program,
                scale,
                count,
            }),
            1..6,
        ),
        queue_capacity in 2usize..6,
        machines in 1usize..3,
    ) {
        let svc = tiny_service(queue_capacity, machines);
        let mut accepted: Vec<usize> = Vec::new();
        let mut bounced = 0usize;
        for burst in &bursts {
            match svc.submit_spec(&burst.spec_line()) {
                Ok(ids) => {
                    prop_assert_eq!(ids.len(), burst.count, "ids per burst");
                    accepted.extend(ids);
                }
                Err(SubmitError::QueueFull { capacity, .. }) => {
                    // Backpressure must be all-or-nothing.
                    prop_assert_eq!(capacity, queue_capacity);
                    bounced += burst.count;
                }
                Err(other) => {
                    return Err(TestCaseError::Fail(format!(
                        "unexpected submit error: {other}"
                    )));
                }
            }
        }

        // Ids are dense and unique by construction of the model; check
        // anyway since the property is "nothing lost, nothing duplicated".
        let mut sorted = accepted.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), accepted.len(), "duplicate job ids");

        // Every accepted job completes, exactly once, on some machine.
        for &id in &accepted {
            let status = svc.wait_job(id).expect("known id");
            match status.state {
                JobState::Done { machine, start_s, end_s, .. } => {
                    prop_assert!(machine < machines);
                    prop_assert!(end_s > start_s, "job {} ran for 0s", id);
                }
                other => {
                    return Err(TestCaseError::Fail(format!(
                        "accepted job {id} did not complete: {other:?}"
                    )));
                }
            }
            prop_assert_eq!(
                status.dispatches, 1,
                "job {} dispatched {} times", id, status.dispatches
            );
        }

        svc.wait_idle();
        let m = svc.metrics();
        prop_assert_eq!(m.submitted, accepted.len());
        prop_assert_eq!(m.dispatched, accepted.len());
        prop_assert_eq!(m.completed, accepted.len());
        prop_assert_eq!(m.rejected, bounced);
        prop_assert_eq!(m.queue_depth, 0);
        prop_assert!(m.worker_error.is_none(), "worker error: {:?}", m.worker_error);
        svc.shutdown();
    }

    #[test]
    fn rejected_batches_leave_no_trace(
        oversize in 1usize..4,
        queue_capacity in 1usize..4,
    ) {
        let svc = tiny_service(queue_capacity, 1);
        let too_many = queue_capacity + oversize;
        let err = svc
            .submit_spec(&format!("srad x0.05 *{too_many}"))
            .unwrap_err();
        prop_assert!(matches!(err, SubmitError::QueueFull { .. }));
        let m = svc.metrics();
        prop_assert_eq!(m.submitted, 0);
        prop_assert_eq!(m.queue_depth, 0);
        prop_assert_eq!(m.rejected, too_many);
        // A fitting batch right after still goes through untouched.
        let ids = svc
            .submit_spec(&format!("lud x0.05 *{queue_capacity}"))
            .expect("fitting batch");
        for &id in &ids {
            let st = svc.wait_job(id).expect("known id");
            prop_assert!(matches!(st.state, JobState::Done { .. }));
        }
        svc.shutdown();
    }
}
