//! Crash-safety properties of the journal + recovery path.
//!
//! The central property: killing the daemon after *any* prefix of the
//! journal and restarting with `recover` loses no job and re-dispatches
//! no completed job — the recovered end state equals the uninterrupted
//! one. Truncation points are sampled both at record boundaries (a clean
//! kill between fsyncs) and at arbitrary bytes (a torn tail mid-write).

use corun_core::RetryPolicy;
use corun_serve::journal::{read_journal, replay, Disposition};
use corun_serve::{JobState, Service, ServiceConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_journal(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "corun-chaos-recovery-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

fn journaled_cfg(path: &Path, recover: bool) -> ServiceConfig {
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let mut cfg = ServiceConfig::fast(&machine);
    cfg.characterization.grid_points = 3;
    cfg.characterization.micro_duration_s = 1.0;
    cfg.queue_capacity = 32;
    cfg.journal_path = Some(path.to_path_buf());
    cfg.recover = recover;
    cfg
}

/// Run a journaled service over `spec` to completion and return the
/// journal bytes it left behind.
fn run_and_capture(path: &Path, spec: &str) -> Vec<u8> {
    let svc = Service::start(journaled_cfg(path, false));
    let ids = svc.submit_spec(spec).expect("submit");
    for &id in &ids {
        let st = svc.wait_job(id).expect("known id");
        assert!(matches!(st.state, JobState::Done { .. }), "{st:?}");
    }
    svc.shutdown();
    drop(svc);
    std::fs::read(path).expect("journal bytes")
}

/// Restart from whatever is at `path` and check the invariants: no
/// accepted job is lost (all reach a terminal state), and no job the
/// journal already records as Done is ever dispatched again.
fn recover_and_check(path: &Path) {
    // What does the truncated journal itself say?
    let (records, report) = read_journal(path);
    let (expected, replay_report) = replay(&records);
    let wholesale_abandon = report.has_errors() || replay_report.has_errors();

    let svc = Service::start(journaled_cfg(path, true));
    if wholesale_abandon {
        assert_eq!(
            svc.job_count(),
            0,
            "an unreplayable journal must start fresh, not half-recovered"
        );
        svc.shutdown();
        return;
    }
    assert_eq!(svc.job_count(), expected.jobs.len(), "no job may be lost");
    // Every journaled job must reach a terminal state after recovery; a
    // job already Done must keep its exact completion and stay at one
    // dispatch (zero double-dispatch).
    for (id, rj) in expected.jobs.iter().enumerate() {
        let st = svc.wait_job(id).expect("recovered id");
        match &rj.disposition {
            Disposition::Done { end_s, .. } => {
                match st.state {
                    JobState::Done {
                        end_s: recovered, ..
                    } => assert_eq!(recovered, *end_s, "job {id}: completion must be verbatim"),
                    other => panic!("job {id} lost its completion: {other:?}"),
                }
                assert_eq!(st.dispatches, 1, "job {id} was re-dispatched after Done");
            }
            Disposition::Pending => {
                // In-flight or queued at the kill: must be re-run to Done.
                assert!(
                    matches!(st.state, JobState::Done { .. }),
                    "pending job {id} must complete after recovery: {:?}",
                    st.state
                );
            }
            Disposition::Rejected => assert_eq!(st.state, JobState::Rejected),
            Disposition::Dead { .. } => {
                assert!(matches!(st.state, JobState::DeadLetter { .. }));
            }
        }
    }
    svc.wait_idle();
    let m = svc.metrics();
    assert_eq!(
        m.completed + m.dead_lettered + m.rejected,
        svc.job_count(),
        "metrics must balance after recovery"
    );
    assert_eq!(m.queue_depth, 0);
    assert!(m.worker_error.is_none(), "{:?}", m.worker_error);
    svc.shutdown();
}

proptest! {
    // Each case runs two full service lifecycles (characterization +
    // simulation + recovery), so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Kill at any record boundary: replaying the journal prefix must
    /// reproduce exactly the completed work and finish the rest.
    #[test]
    fn kill_at_any_record_boundary_loses_nothing(
        njobs in 1usize..4,
        pick in 0usize..10_000,
    ) {
        let path = temp_journal("boundary");
        let bytes = run_and_capture(&path, &format!("srad x0.05 *{njobs}\nlud x0.05\n"));

        // Record boundaries: after each newline (a kill between fsyncs).
        let boundaries: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1)
            .collect();
        prop_assert!(!boundaries.is_empty());
        let cut = boundaries[pick % boundaries.len()];
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        recover_and_check(&path);
        std::fs::remove_file(&path).ok();
    }

    /// Kill mid-record: a torn JSON tail is dropped (SRV007 warning), the
    /// intact prefix still replays, nothing is lost.
    #[test]
    fn kill_at_any_byte_tolerates_torn_tail(
        njobs in 1usize..3,
        pick in 0usize..10_000,
    ) {
        let path = temp_journal("torn");
        let bytes = run_and_capture(&path, &format!("hotspot x0.05 *{njobs}\n"));
        prop_assert!(bytes.len() > 2);
        // Any byte offset except 0 (an empty file is the fresh-start case,
        // covered separately below).
        let cut = 1 + pick % (bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        recover_and_check(&path);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn empty_journal_starts_fresh() {
    let path = temp_journal("empty");
    std::fs::write(&path, b"").unwrap();
    recover_and_check(&path);
    std::fs::remove_file(&path).ok();
}

#[test]
fn faulted_run_journals_every_outcome() {
    // A fault plan that fails every execution: all jobs must end
    // dead-lettered — visibly, in the journal and the metrics — and the
    // journal must replay to the same picture.
    let path = temp_journal("faulted");
    let mut cfg = journaled_cfg(&path, false);
    cfg.fault_plan = Some(apu_sim::FaultPlan::parse("@chaos seed=7 job-fail=1\n").unwrap());
    cfg.retry = RetryPolicy {
        max_retries: 1,
        backoff_base_s: 0.01,
        backoff_max_s: 0.02,
    };
    let svc = Service::start(cfg);
    let ids = svc.submit_spec("srad x0.05 *2\n").unwrap();
    for &id in &ids {
        let st = svc.wait_job(id).expect("known id");
        assert!(matches!(st.state, JobState::DeadLetter { .. }), "{st:?}");
    }
    let m = svc.metrics();
    assert_eq!(m.dead_lettered + m.completed, m.submitted);
    let chaos = svc.chaos_report();
    assert!(chaos.has(corun_verify::Code::Srv003));
    assert!(chaos.has(corun_verify::Code::Srv006));
    svc.shutdown();
    drop(svc);

    let (records, report) = read_journal(&path);
    assert!(!report.has_errors(), "{}", report.render_human());
    let (recovered, replay_report) = replay(&records);
    assert!(
        !replay_report.has_errors(),
        "{}",
        replay_report.render_human()
    );
    assert_eq!(recovered.jobs.len(), 2);
    for rj in &recovered.jobs {
        assert!(matches!(rj.disposition, Disposition::Dead { .. }));
    }
    // And the dead-letter verdicts survive a recovery restart.
    recover_and_check(&path);
    std::fs::remove_file(&path).ok();
}
