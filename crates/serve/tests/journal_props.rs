//! Property tests for the crash journal: whatever sequence of
//! transitions the daemon performs, the journal it writes must replay
//! deterministically, idempotently across recovery boundaries, and back
//! to exactly the in-memory state — and recovering twice must change
//! nothing. These are the same invariants `corun mc` proves
//! exhaustively at small scope; here they are sampled over much longer
//! random walks (more jobs, more crashes, more kills than the bounded
//! scope allows), so the two approaches cover each other's blind spots.

use apu_sim::Device;
use corun_core::RetryPolicy;
use corun_serve::journal::{check_causality, replay, Record};
use corun_serve::state::ServiceState;
use proptest::prelude::*;

const MACHINES: usize = 2;

/// One step of a random walk: an operation selector plus two operands
/// whose meaning depends on the operation.
type Step = (usize, usize, usize);

/// Drive a walk over the pure state machine, journaling exactly as the
/// daemon does (transition first, record append second; `Evict` before
/// its per-job records). Transitions that refuse (busy slot, downed
/// machine, terminal job) are skipped — a random walk legitimately
/// proposes illegal moves; the daemon's driver simply never performs
/// them. Returns the final state and its journal.
fn walk(steps: &[Step]) -> (ServiceState, Vec<Record>) {
    let retry = RetryPolicy::default();
    let mut st = ServiceState::new(MACHINES);
    let mut journal: Vec<Record> = Vec::new();
    for &(op, a, b) in steps {
        let jobs = st.jobs.len();
        match op {
            0 => {
                if let Ok((_, rec)) = st.accept(&format!("job#{jobs}"), "prog", 1.0) {
                    journal.push(rec);
                }
            }
            1 if jobs > 0 => {
                if let Ok(rec) = st.reject(a % jobs) {
                    journal.push(rec);
                }
            }
            2 if jobs > 0 => {
                let device = if b % 2 == 0 { Device::Cpu } else { Device::Gpu };
                if let Ok(rec) = st.dispatch(a % jobs, b % MACHINES, device, 0.0, 1.0) {
                    journal.push(rec);
                }
            }
            3 if jobs > 0 => {
                if let Ok(rec) = st.complete(a % jobs, 1.0) {
                    journal.push(rec);
                }
            }
            4 if jobs > 0 => {
                if let Ok(report) = st.fail(a % jobs, &retry, "walk failure") {
                    journal.push(report.record);
                }
            }
            5 => {
                if let Ok((evict, reports)) = st.crash(a % MACHINES, 1.0, &retry, "walk crash") {
                    journal.push(evict);
                    journal.extend(reports.into_iter().map(|r| r.record));
                }
            }
            6 => {
                // kill -9 + restart: recover purely from the journal,
                // exactly as `serve --recover` does.
                let (recovered, _) = replay(&journal);
                journal.push(Record::Recovered {
                    jobs: recovered.jobs.len(),
                    machines: MACHINES,
                });
                st = ServiceState::restore_from(&recovered, MACHINES);
            }
            _ => {}
        }
    }
    (st, journal)
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    collection::vec((0usize..7, 0usize..8, 0usize..8), 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Replaying a journal twice yields the same dispositions as
    /// replaying it once, and replaying past an appended recovery
    /// boundary changes nothing: recovery can be retried forever.
    #[test]
    fn replay_is_idempotent(steps in steps()) {
        let (_, journal) = walk(&steps);
        let (once, _) = replay(&journal);
        let (twice, _) = replay(&journal);
        prop_assert_eq!(&once.jobs, &twice.jobs, "replay is not deterministic");

        let mut with_boundary = journal.clone();
        with_boundary.push(Record::Recovered {
            jobs: once.jobs.len(),
            machines: MACHINES,
        });
        let (again, _) = replay(&with_boundary);
        prop_assert_eq!(&once.jobs, &again.jobs,
            "replaying past a recovery boundary changed the dispositions");
    }

    /// Recovering from a recovered state's journal is a no-op: the
    /// state machine reaches a fixed point after one recovery.
    #[test]
    fn recover_after_recover_is_a_no_op(steps in steps()) {
        let (_, journal) = walk(&steps);
        let (rec1, _) = replay(&journal);
        let st1 = ServiceState::restore_from(&rec1, MACHINES);

        let mut journal2 = journal.clone();
        journal2.push(Record::Recovered {
            jobs: rec1.jobs.len(),
            machines: MACHINES,
        });
        let (rec2, _) = replay(&journal2);
        let st2 = ServiceState::restore_from(&rec2, MACHINES);

        prop_assert_eq!(&rec1.jobs, &rec2.jobs);
        prop_assert_eq!(st1.fingerprint(), st2.fingerprint(),
            "second recovery produced a different state");
    }

    /// Every journal a legal walk writes replays back to exactly the
    /// in-memory state, passes the daemon's own invariant checks, and
    /// is causally well-formed (SRV010 never fires on honest history).
    #[test]
    fn walk_journals_replay_to_the_live_state(steps in steps()) {
        let (st, journal) = walk(&steps);
        prop_assert!(st.check_invariants().is_empty(),
            "walk reached an invariant-violating state: {:?}", st.check_invariants());

        let (recovered, _) = replay(&journal);
        let violations = st.check_replay_consistency(&recovered);
        prop_assert!(violations.is_empty(),
            "journal replay disagrees with the live state: {violations:?}");

        let causality = check_causality(&journal);
        prop_assert!(!causality.has_errors(),
            "honest journal flagged as causally impossible:\n{}",
            causality.render_human());
    }

    /// Causality is prefix-closed: every prefix of an honest journal
    /// (what a torn tail leaves behind) is itself honest, so SRV010
    /// never blocks recovery from a crash mid-append.
    #[test]
    fn causality_is_prefix_closed(steps in steps()) {
        let (_, journal) = walk(&steps);
        for cut in 0..=journal.len() {
            let causality = check_causality(&journal[..cut]);
            prop_assert!(!causality.has_errors(),
                "prefix of {cut} record(s) flagged:\n{}", causality.render_human());
        }
    }
}
