//! Snapshot codec: [`ServiceState`] ⇄ one compact JSON document.
//!
//! The daemon periodically embeds a `Snapshot` journal record carrying
//! the encoded state plus its fingerprint, written only at quiescent
//! points where the journal and the in-memory state agree (see
//! `docs/REPLAY.md`). `corun replay` decodes snapshots to verify that
//! re-executing the journal reproduces the recorded state bit-identically
//! and to report field-level differences with `--diff`.
//!
//! Floats are rendered with Rust's shortest-roundtrip formatting (the
//! `json` module), so `decode_state(encode_state(st))` reproduces every
//! `f64` exactly and `fingerprint()` equality is preserved.

use crate::json::{obj, Json};
use crate::state::{Counters, JobCore, JobState, MachineCore, ServiceState};
use apu_sim::Device;
use std::collections::VecDeque;

fn device_json(d: Device) -> Json {
    Json::Str(
        match d {
            Device::Cpu => "cpu",
            Device::Gpu => "gpu",
        }
        .into(),
    )
}

fn opt_id(slot: Option<usize>) -> Json {
    match slot {
        Some(id) => Json::Num(id as f64),
        None => Json::Null,
    }
}

fn job_json(j: &JobCore) -> Json {
    let mut fields = vec![
        ("name", Json::Str(j.name.clone())),
        ("program", Json::Str(j.program.clone())),
        ("scale", Json::Num(j.scale)),
        ("retries", Json::Num(f64::from(j.retries))),
        ("dispatches", Json::Num(f64::from(j.dispatches))),
    ];
    match &j.state {
        JobState::Queued => fields.push(("st", Json::Str("queued".into()))),
        JobState::Rejected => fields.push(("st", Json::Str("rejected".into()))),
        JobState::Running {
            machine,
            device,
            start_s,
            predicted_s,
        } => {
            fields.push(("st", Json::Str("running".into())));
            fields.push(("machine", Json::Num(*machine as f64)));
            fields.push(("device", device_json(*device)));
            fields.push(("start_s", Json::Num(*start_s)));
            fields.push(("predicted_s", Json::Num(*predicted_s)));
        }
        JobState::Done {
            machine,
            device,
            start_s,
            end_s,
            predicted_s,
        } => {
            fields.push(("st", Json::Str("done".into())));
            fields.push(("machine", Json::Num(*machine as f64)));
            fields.push(("device", device_json(*device)));
            fields.push(("start_s", Json::Num(*start_s)));
            fields.push(("end_s", Json::Num(*end_s)));
            fields.push(("predicted_s", Json::Num(*predicted_s)));
        }
        JobState::DeadLetter { reason } => {
            fields.push(("st", Json::Str("dead".into())));
            fields.push(("reason", Json::Str(reason.clone())));
        }
    }
    obj(fields)
}

/// Encode a full [`ServiceState`] as one compact JSON document.
pub fn encode_state(st: &ServiceState) -> String {
    let c = st.counters;
    obj(vec![
        ("jobs", Json::Arr(st.jobs.iter().map(job_json).collect())),
        (
            "queue",
            Json::Arr(st.queue.iter().map(|&id| Json::Num(id as f64)).collect()),
        ),
        (
            "machines",
            Json::Arr(
                st.machines
                    .iter()
                    .map(|m| {
                        obj(vec![
                            ("down", Json::Bool(m.down)),
                            ("cpu", opt_id(m.running[0])),
                            ("gpu", opt_id(m.running[1])),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("shutdown", Json::Bool(st.shutdown)),
        (
            "counters",
            obj(vec![
                ("accepted", Json::Num(c.accepted as f64)),
                ("rejected", Json::Num(c.rejected as f64)),
                ("dispatched", Json::Num(c.dispatched as f64)),
                ("completed", Json::Num(c.completed as f64)),
                ("requeued", Json::Num(c.requeued as f64)),
                ("dead_lettered", Json::Num(c.dead_lettered as f64)),
                ("evictions", Json::Num(c.evictions as f64)),
            ]),
        ),
    ])
    .render()
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing `{key}`"))
}

fn req_idx(v: &Json, key: &str) -> Result<usize, String> {
    req(v, key)?
        .as_index()
        .ok_or_else(|| format!("`{key}` is not an index"))
}

fn req_num(v: &Json, key: &str) -> Result<f64, String> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| format!("`{key}` is not a number"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    Ok(req(v, key)?
        .as_str()
        .ok_or_else(|| format!("`{key}` is not a string"))?
        .to_owned())
}

fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    req(v, key)?
        .as_bool()
        .ok_or_else(|| format!("`{key}` is not a bool"))
}

fn req_device(v: &Json, key: &str) -> Result<Device, String> {
    match req_str(v, key)?.as_str() {
        "cpu" => Ok(Device::Cpu),
        "gpu" => Ok(Device::Gpu),
        other => Err(format!("bad device `{other}`")),
    }
}

fn decode_job(v: &Json, k: usize) -> Result<JobCore, String> {
    let err = |e: String| format!("job {k}: {e}");
    let state = match req_str(v, "st").map_err(err)?.as_str() {
        "queued" => JobState::Queued,
        "rejected" => JobState::Rejected,
        "running" => JobState::Running {
            machine: req_idx(v, "machine").map_err(err)?,
            device: req_device(v, "device").map_err(err)?,
            start_s: req_num(v, "start_s").map_err(err)?,
            predicted_s: req_num(v, "predicted_s").map_err(err)?,
        },
        "done" => JobState::Done {
            machine: req_idx(v, "machine").map_err(err)?,
            device: req_device(v, "device").map_err(err)?,
            start_s: req_num(v, "start_s").map_err(err)?,
            end_s: req_num(v, "end_s").map_err(err)?,
            predicted_s: req_num(v, "predicted_s").map_err(err)?,
        },
        "dead" => JobState::DeadLetter {
            reason: req_str(v, "reason").map_err(err)?,
        },
        other => return Err(format!("job {k}: unknown state `{other}`")),
    };
    Ok(JobCore {
        name: req_str(v, "name").map_err(err)?,
        program: req_str(v, "program").map_err(err)?,
        scale: req_num(v, "scale").map_err(err)?,
        state,
        retries: req_idx(v, "retries").map_err(err)? as u32,
        dispatches: req_idx(v, "dispatches").map_err(err)? as u32,
    })
}

fn decode_slot(v: &Json, key: &str) -> Result<Option<usize>, String> {
    match req(v, key)? {
        Json::Null => Ok(None),
        j => j
            .as_index()
            .map(Some)
            .ok_or_else(|| format!("`{key}` is not an index or null")),
    }
}

/// Decode a document [`encode_state`] produced back into a
/// [`ServiceState`]. Any structural problem is an error — a snapshot
/// that does not decode exactly is worthless as a replay checkpoint.
pub fn decode_state(text: &str) -> Result<ServiceState, String> {
    let v = Json::parse(text).map_err(|e| format!("snapshot is not valid JSON: {e}"))?;
    let jobs = req(&v, "jobs")?
        .as_arr()
        .ok_or("`jobs` is not an array")?
        .iter()
        .enumerate()
        .map(|(k, j)| decode_job(j, k))
        .collect::<Result<Vec<JobCore>, String>>()?;
    let queue = req(&v, "queue")?
        .as_arr()
        .ok_or("`queue` is not an array")?
        .iter()
        .map(|j| j.as_index().ok_or("queue entry is not an index".to_owned()))
        .collect::<Result<VecDeque<usize>, String>>()?;
    let machines = req(&v, "machines")?
        .as_arr()
        .ok_or("`machines` is not an array")?
        .iter()
        .enumerate()
        .map(|(k, m)| {
            let err = |e: String| format!("machine {k}: {e}");
            Ok(MachineCore {
                down: req_bool(m, "down").map_err(err)?,
                running: [
                    decode_slot(m, "cpu").map_err(err)?,
                    decode_slot(m, "gpu").map_err(err)?,
                ],
            })
        })
        .collect::<Result<Vec<MachineCore>, String>>()?;
    let c = req(&v, "counters")?;
    let counters = Counters {
        accepted: req_idx(c, "accepted")?,
        rejected: req_idx(c, "rejected")?,
        dispatched: req_idx(c, "dispatched")?,
        completed: req_idx(c, "completed")?,
        requeued: req_idx(c, "requeued")?,
        dead_lettered: req_idx(c, "dead_lettered")?,
        evictions: req_idx(c, "evictions")?,
    };
    Ok(ServiceState {
        jobs,
        queue,
        machines,
        shutdown: req_bool(&v, "shutdown")?,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corun_core::RetryPolicy;

    /// A state exercising every `JobState` arm: done, dead-lettered,
    /// rejected, queued, running, plus a crashed machine and shutdown.
    fn busy_state() -> ServiceState {
        let retry = RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        };
        let mut st = ServiceState::new(2);
        for k in 0..5 {
            st.accept(&format!("srad#{k}"), "srad", 0.25).unwrap();
        }
        let (rejected, _) = st.accept("lud#0", "lud", 0.1).unwrap();
        st.reject(rejected).unwrap();
        st.dispatch(0, 0, Device::Gpu, 0.0, 3.5).unwrap();
        st.dispatch(1, 1, Device::Cpu, 0.0, 2.0).unwrap();
        st.complete(0, 3.25).unwrap();
        st.fail(1, &retry, "injected job failure").unwrap();
        st.dispatch(1, 1, Device::Cpu, 4.0, 2.0).unwrap();
        st.fail(1, &retry, "injected job failure").unwrap(); // dead-letters
        st.dispatch(2, 0, Device::Cpu, 4.0, 1.0).unwrap();
        st.crash(0, 5.0, &retry, "machine crash").unwrap();
        st.begin_shutdown();
        st
    }

    #[test]
    fn snapshot_roundtrip_preserves_state_and_fingerprint() {
        let st = busy_state();
        let text = encode_state(&st);
        let back = decode_state(&text).expect("decode");
        assert_eq!(back, st);
        assert_eq!(back.fingerprint(), st.fingerprint());
        // And the encoding itself is stable across a second round-trip.
        assert_eq!(encode_state(&back), text);
    }

    #[test]
    fn empty_state_roundtrips() {
        let st = ServiceState::new(0);
        let back = decode_state(&encode_state(&st)).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(decode_state("not json").is_err());
        assert!(decode_state("{}").is_err());
        assert!(decode_state(r#"{"jobs":[],"queue":[],"machines":[]}"#).is_err());
        assert!(decode_state(
            r#"{"jobs":[{"name":"a"}],"queue":[],"machines":[],"shutdown":false,"counters":{"accepted":0,"rejected":0,"dispatched":0,"completed":0,"requeued":0,"dead_lettered":0,"evictions":0}}"#
        )
        .is_err());
    }
}
