//! The pure service state machine: every concurrency-critical transition
//! of the daemon — admission, dispatch, completion, failure/requeue,
//! dead-letter, machine crash, shutdown — as side-effect-free functions
//! over an explicit [`ServiceState`].
//!
//! The live daemon ([`crate::service`]) is a thin driver over these
//! functions: worker threads decide *when* to call a transition (engine
//! polls, harvests, wall-clock back-off gates) but the state change
//! itself — which job moves where, which counters move, which
//! [`Record`] is journaled — happens here and only here. The bounded
//! model checker (`corun-mc`) drives the *same* functions through every
//! interleaving of events at small scope, so what it proves is a
//! property of the code the daemon actually runs, not of a parallel
//! hand-written model.
//!
//! Transitions are total over their error type: an illegal call (e.g.
//! dispatching a job that is not queued) returns a [`TransitionError`]
//! and leaves the state untouched. Every legal transition returns the
//! journal [`Record`]s that make it durable; callers append them (the
//! daemon to the fsync'd journal, the model checker to its in-memory
//! journal whose replay it cross-checks).
//!
//! [`ServiceState::check_invariants`] states the safety properties as
//! executable checks; `docs/MODELCHECK.md` catalogs them and the MC0xx
//! diagnostics they surface as.

use crate::journal::{Disposition, Record, Recovered};
use apu_sim::Device;
use corun_core::{JobId, RequeueOutcome, RetryPolicy};
use std::collections::VecDeque;

/// Where a submitted job currently stands.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Admitted, waiting for dispatch.
    Queued,
    /// Refused at admission (cap-infeasible); never queued.
    Rejected,
    /// Running on a simulated machine.
    Running {
        /// Hosting machine index.
        machine: usize,
        /// Device it was dispatched to.
        device: Device,
        /// Dispatch time on that machine's simulated clock, seconds.
        start_s: f64,
        /// Model-predicted duration at dispatch (co-run-aware), seconds.
        predicted_s: f64,
    },
    /// Completed.
    Done {
        /// Hosting machine index.
        machine: usize,
        /// Device it ran on.
        device: Device,
        /// Dispatch time, simulated seconds.
        start_s: f64,
        /// Completion time, simulated seconds.
        end_s: f64,
        /// Model-predicted duration at dispatch, seconds.
        predicted_s: f64,
    },
    /// Terminal failure: the job's executions kept being destroyed by
    /// faults and the retry budget is spent. Never silently dropped.
    DeadLetter {
        /// Why the job was given up on.
        reason: String,
    },
}

/// One job as the pure state machine sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCore {
    /// Instance name (`program#k`).
    pub name: String,
    /// Program the job was built from (journal recovery rebuilds the
    /// [`apu_sim::JobSpec`] from this).
    pub program: String,
    /// Workload scale factor.
    pub scale: f64,
    /// Current state.
    pub state: JobState,
    /// Retry attempts consumed so far.
    pub retries: u32,
    /// Times this job was handed to an engine.
    pub dispatches: u32,
}

/// One machine as the pure state machine sees it: a crash flag and one
/// slot per device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineCore {
    /// `true` once the machine crashed; it never hosts work again.
    pub down: bool,
    /// The job running on each device (`Device::index()` order).
    pub running: [Option<JobId>; 2],
}

/// Monotonic event counters; the books the balance invariant audits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Jobs ever accepted (admission records written).
    pub accepted: usize,
    /// Jobs refused after profiling (cap-infeasible).
    pub rejected: usize,
    /// Engine handoffs (first dispatches plus retries).
    pub dispatched: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Executions lost to faults and put back in the queue.
    pub requeued: usize,
    /// Jobs that exhausted their retry budget.
    pub dead_lettered: usize,
    /// Machines lost to crashes.
    pub evictions: usize,
}

/// Why a transition was refused. The state is untouched on error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransitionError {
    /// The job id is out of range.
    UnknownJob(JobId),
    /// The machine index is out of range.
    UnknownMachine(usize),
    /// The transition needs the job queued, but it is not.
    NotQueued(JobId),
    /// The transition needs the job running, but it is not.
    NotRunning(JobId),
    /// The target machine has crashed.
    MachineDown(usize),
    /// The target device already hosts a job.
    SlotBusy {
        /// The machine whose slot is occupied.
        machine: usize,
        /// The occupied device.
        device: Device,
        /// The job occupying it.
        occupant: JobId,
    },
    /// The service no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for TransitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransitionError::UnknownJob(j) => write!(f, "unknown job {j}"),
            TransitionError::UnknownMachine(m) => write!(f, "unknown machine {m}"),
            TransitionError::NotQueued(j) => write!(f, "job {j} is not queued"),
            TransitionError::NotRunning(j) => write!(f, "job {j} is not running"),
            TransitionError::MachineDown(m) => write!(f, "machine {m} is down"),
            TransitionError::SlotBusy {
                machine,
                device,
                occupant,
            } => write!(
                f,
                "machine {machine} {device:?} slot is busy with job {occupant}"
            ),
            TransitionError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

/// Everything a failure transition decides, so the driver can account
/// for the lost execution (lost-work seconds, retracted predictions)
/// and emit the matching `SRV003`/`SRV006` diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct FailReport {
    /// The job whose execution was lost.
    pub job: JobId,
    /// The journal record making the decision durable (`Requeue` or
    /// `Dead`).
    pub record: Record,
    /// Retry or dead-letter, with attempt count and back-off.
    pub outcome: RequeueOutcome,
    /// The machine the lost execution ran on.
    pub machine: usize,
    /// The device it ran on.
    pub device: Device,
    /// When it started, simulated seconds.
    pub start_s: f64,
    /// The model's predicted duration at dispatch, seconds.
    pub predicted_s: f64,
}

/// Which safety property a [`Violation`] breaks; the model checker maps
/// each kind to a stable MC0xx diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A job the service owes work to is unreachable: queued-but-not-in-
    /// queue, running-but-not-in-a-slot, or hosted by a dead machine.
    JobLost,
    /// A job is schedulable or scheduled twice: duplicated in the queue,
    /// queued while running or done, in two slots, or a slot points at a
    /// job that is not running there.
    DoubleDispatch,
    /// Journal replay disagrees with the in-memory state.
    ReplayMismatch,
    /// The monotonic counters do not balance against the job table.
    BooksImbalance,
}

/// One invariant violation found by [`ServiceState::check_invariants`]
/// or [`ServiceState::check_replay_consistency`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which safety property is broken.
    pub kind: ViolationKind,
    /// What exactly is wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// The explicit service state every transition is a pure function over.
///
/// Fields are public so the daemon driver and the model checker can
/// *read* them freely (and so the checker's test-only mutation hook can
/// corrupt them deliberately); by convention all legitimate writes go
/// through the transition methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceState {
    /// Every job ever accepted, dense by [`JobId`].
    pub jobs: Vec<JobCore>,
    /// Admitted jobs awaiting dispatch, in arrival order (requeues go to
    /// the back).
    pub queue: VecDeque<JobId>,
    /// Per-machine crash flag and device slots.
    pub machines: Vec<MachineCore>,
    /// Whether shutdown began; no further admissions.
    pub shutdown: bool,
    /// The books.
    pub counters: Counters,
}

impl ServiceState {
    /// Fresh state for `machines` machines, nothing queued.
    pub fn new(machines: usize) -> ServiceState {
        ServiceState {
            jobs: Vec::new(),
            queue: VecDeque::new(),
            machines: vec![MachineCore::default(); machines],
            shutdown: false,
            counters: Counters::default(),
        }
    }

    /// Admit one job: append it to the job table and the queue. Returns
    /// the new id and the `Accept` record to journal.
    pub fn accept(
        &mut self,
        name: &str,
        program: &str,
        scale: f64,
    ) -> Result<(JobId, Record), TransitionError> {
        if self.shutdown {
            return Err(TransitionError::ShuttingDown);
        }
        let id = self.jobs.len();
        self.jobs.push(JobCore {
            name: name.to_string(),
            program: program.to_string(),
            scale,
            state: JobState::Queued,
            retries: 0,
            dispatches: 0,
        });
        self.queue.push_back(id);
        self.counters.accepted += 1;
        Ok((
            id,
            Record::Accept {
                id,
                name: name.to_string(),
                program: program.to_string(),
                scale,
            },
        ))
    }

    /// Refuse an accepted-but-still-queued job (cap-infeasible after
    /// profiling). Returns the `Reject` record to journal.
    pub fn reject(&mut self, id: JobId) -> Result<Record, TransitionError> {
        let job = self
            .jobs
            .get_mut(id)
            .ok_or(TransitionError::UnknownJob(id))?;
        if job.state != JobState::Queued {
            return Err(TransitionError::NotQueued(id));
        }
        job.state = JobState::Rejected;
        self.queue.retain(|&j| j != id);
        self.counters.rejected += 1;
        Ok(Record::Reject { id })
    }

    /// Hand a queued job to a machine's device. Returns the `Dispatch`
    /// record to journal (its `attempt` field is the job's consumed
    /// retry count).
    pub fn dispatch(
        &mut self,
        id: JobId,
        machine: usize,
        device: Device,
        start_s: f64,
        predicted_s: f64,
    ) -> Result<Record, TransitionError> {
        let job = self.jobs.get(id).ok_or(TransitionError::UnknownJob(id))?;
        if job.state != JobState::Queued {
            return Err(TransitionError::NotQueued(id));
        }
        let m = self
            .machines
            .get(machine)
            .ok_or(TransitionError::UnknownMachine(machine))?;
        if m.down {
            return Err(TransitionError::MachineDown(machine));
        }
        if let Some(occupant) = m.running[device.index()] {
            return Err(TransitionError::SlotBusy {
                machine,
                device,
                occupant,
            });
        }
        self.queue.retain(|&j| j != id);
        let job = &mut self.jobs[id];
        job.state = JobState::Running {
            machine,
            device,
            start_s,
            predicted_s,
        };
        job.dispatches += 1;
        let attempt = job.retries;
        self.machines[machine].running[device.index()] = Some(id);
        self.counters.dispatched += 1;
        Ok(Record::Dispatch {
            id,
            machine,
            device,
            start_s,
            predicted_s,
            attempt,
        })
    }

    /// Mark a running job completed at `end_s`. Returns the `Done`
    /// record to journal.
    pub fn complete(&mut self, id: JobId, end_s: f64) -> Result<Record, TransitionError> {
        let job = self.jobs.get(id).ok_or(TransitionError::UnknownJob(id))?;
        let JobState::Running {
            machine,
            device,
            start_s,
            predicted_s,
        } = job.state
        else {
            return Err(TransitionError::NotRunning(id));
        };
        self.jobs[id].state = JobState::Done {
            machine,
            device,
            start_s,
            end_s,
            predicted_s,
        };
        self.release_slot(machine, device, id);
        self.counters.completed += 1;
        Ok(Record::Done {
            id,
            machine,
            device,
            start_s,
            end_s,
            predicted_s,
        })
    }

    /// A running job's execution was destroyed (injected failure or
    /// machine crash): consume one retry and requeue it behind a
    /// deterministic back-off, or dead-letter it once the budget is
    /// spent. `reason` describes the loss (e.g. "injected job failure").
    pub fn fail(
        &mut self,
        id: JobId,
        retry: &RetryPolicy,
        reason: &str,
    ) -> Result<FailReport, TransitionError> {
        let job = self.jobs.get(id).ok_or(TransitionError::UnknownJob(id))?;
        if job.retries >= retry.max_retries {
            let attempts = job.retries + 1;
            let why = format!("{reason}; gave up after {attempts} attempt(s)");
            self.fail_with(id, RequeueOutcome::DeadLetter { attempts }, &why)
        } else {
            let attempt = job.retries + 1;
            let backoff_s = retry.backoff_s(id, attempt);
            self.fail_with(id, RequeueOutcome::Retry { attempt, backoff_s }, reason)
        }
    }

    /// Apply an already-decided failure outcome. [`ServiceState::fail`]
    /// decides the outcome from the live [`RetryPolicy`]; `corun replay`
    /// applies the outcome a `Requeue`/`Dead` journal record carries.
    /// Both paths share this one mutation so a replayed failure is
    /// bit-identical to the live one. `reason` is recorded verbatim.
    pub fn fail_with(
        &mut self,
        id: JobId,
        outcome: RequeueOutcome,
        reason: &str,
    ) -> Result<FailReport, TransitionError> {
        let job = self.jobs.get(id).ok_or(TransitionError::UnknownJob(id))?;
        let JobState::Running {
            machine,
            device,
            start_s,
            predicted_s,
        } = job.state
        else {
            return Err(TransitionError::NotRunning(id));
        };
        self.release_slot(machine, device, id);
        let job = &mut self.jobs[id];
        let record = match outcome {
            RequeueOutcome::DeadLetter { .. } => {
                job.state = JobState::DeadLetter {
                    reason: reason.to_string(),
                };
                self.counters.dead_lettered += 1;
                Record::Dead {
                    id,
                    reason: reason.to_string(),
                }
            }
            RequeueOutcome::Retry { attempt, backoff_s } => {
                job.retries = attempt;
                job.state = JobState::Queued;
                self.queue.push_back(id);
                self.counters.requeued += 1;
                Record::Requeue {
                    id,
                    attempt,
                    backoff_s,
                    reason: reason.to_string(),
                }
            }
        };
        Ok(FailReport {
            job: id,
            record,
            outcome,
            machine,
            device,
            start_s,
            predicted_s,
        })
    }

    /// A machine crashed at `at_s`: mark it down and push every job it
    /// hosted through the failure path (CPU slot first, then GPU).
    /// Returns the `Evict` record plus one [`FailReport`] per evicted
    /// job; journal the `Evict` record before the per-job records.
    pub fn crash(
        &mut self,
        machine: usize,
        at_s: f64,
        retry: &RetryPolicy,
        reason: &str,
    ) -> Result<(Record, Vec<FailReport>), TransitionError> {
        let m = self
            .machines
            .get(machine)
            .ok_or(TransitionError::UnknownMachine(machine))?;
        if m.down {
            return Err(TransitionError::MachineDown(machine));
        }
        let victims: Vec<JobId> = m.running.iter().flatten().copied().collect();
        self.evict_only(machine)
            .expect("machine existence and liveness checked above");
        let mut evicted = Vec::with_capacity(victims.len());
        for id in victims {
            let report = self
                .fail(id, retry, reason)
                .expect("slot occupant must be running");
            evicted.push(report);
        }
        Ok((Record::Evict { machine, at_s }, evicted))
    }

    /// Mark a machine down without touching its jobs: the replay half of
    /// [`ServiceState::crash`]. The live daemon journals one `Evict`
    /// record followed by a `Requeue`/`Dead` record per victim, so
    /// `corun replay` applies the down-marking here and lets the
    /// journaled per-victim records do the rest through
    /// [`ServiceState::fail_with`].
    pub fn evict_only(&mut self, machine: usize) -> Result<(), TransitionError> {
        let m = self
            .machines
            .get_mut(machine)
            .ok_or(TransitionError::UnknownMachine(machine))?;
        if m.down {
            return Err(TransitionError::MachineDown(machine));
        }
        m.down = true;
        self.counters.evictions += 1;
        Ok(())
    }

    /// Clear a device slot the engine has vacated ahead of the harvest
    /// that will record why (completion or failure). The job itself is
    /// untouched; `complete`/`fail` tolerate an already-cleared slot.
    /// Live-driver shim only — the model checker's atomic events never
    /// need it.
    pub fn vacate(&mut self, machine: usize, device: Device) {
        if let Some(m) = self.machines.get_mut(machine) {
            m.running[device.index()] = None;
        }
    }

    /// Stop accepting work. Idempotent.
    pub fn begin_shutdown(&mut self) {
        self.shutdown = true;
    }

    fn release_slot(&mut self, machine: usize, device: Device, id: JobId) {
        if let Some(m) = self.machines.get_mut(machine) {
            if m.running[device.index()] == Some(id) {
                m.running[device.index()] = None;
            }
        }
    }

    /// Rebuild the state a successful journal replay describes: done
    /// work stays done, pending/in-flight work is re-queued, consumed
    /// retries survive. Machines start fresh (the old incarnation's
    /// crashes died with it).
    pub fn restore_from(recovered: &Recovered, machines: usize) -> ServiceState {
        let mut st = ServiceState::new(machines);
        for rj in &recovered.jobs {
            let id = st.jobs.len();
            let (state, dispatches) = match &rj.disposition {
                Disposition::Pending => (JobState::Queued, 0),
                Disposition::Rejected => (JobState::Rejected, 0),
                Disposition::Done {
                    machine,
                    device,
                    start_s,
                    end_s,
                    predicted_s,
                } => (
                    JobState::Done {
                        machine: *machine,
                        device: *device,
                        start_s: *start_s,
                        end_s: *end_s,
                        predicted_s: *predicted_s,
                    },
                    1,
                ),
                Disposition::Dead { reason } => (
                    JobState::DeadLetter {
                        reason: reason.clone(),
                    },
                    0,
                ),
            };
            st.counters.accepted += 1;
            match &state {
                JobState::Queued => st.queue.push_back(id),
                JobState::Rejected => st.counters.rejected += 1,
                JobState::Done { .. } => {
                    st.counters.dispatched += 1;
                    st.counters.completed += 1;
                }
                JobState::DeadLetter { .. } => st.counters.dead_lettered += 1,
                JobState::Running { .. } => unreachable!("replay never yields a running job"),
            }
            st.counters.requeued += rj.retries as usize;
            st.jobs.push(JobCore {
                name: rj.name.clone(),
                program: rj.program.clone(),
                scale: rj.scale,
                state,
                retries: rj.retries,
                dispatches,
            });
        }
        st
    }

    /// Check every structural safety invariant; an empty result means
    /// the state is sound. `docs/MODELCHECK.md` catalogs the properties.
    pub fn check_invariants(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut push = |kind: ViolationKind, detail: String| out.push(Violation { kind, detail });

        // Queue sanity: members exist, are Queued, and appear once.
        let mut queued_seen = vec![0usize; self.jobs.len()];
        for &id in &self.queue {
            match self.jobs.get(id) {
                None => push(
                    ViolationKind::JobLost,
                    format!("queue references unknown job {id}"),
                ),
                Some(j) => {
                    queued_seen[id] += 1;
                    if j.state != JobState::Queued {
                        push(
                            ViolationKind::DoubleDispatch,
                            format!("job {id} is in the queue but its state is {:?}", j.state),
                        );
                    }
                }
            }
        }
        for (id, &n) in queued_seen.iter().enumerate() {
            if n > 1 {
                push(
                    ViolationKind::DoubleDispatch,
                    format!("job {id} appears {n} times in the queue"),
                );
            }
        }

        // Slot sanity: occupants exist, run exactly where the slot says,
        // and no job holds two slots.
        let mut slot_of = vec![0usize; self.jobs.len()];
        for (mi, m) in self.machines.iter().enumerate() {
            for &dev in &Device::ALL {
                let Some(id) = m.running[dev.index()] else {
                    continue;
                };
                match self.jobs.get(id) {
                    None => push(
                        ViolationKind::JobLost,
                        format!("machine {mi} {dev:?} slot references unknown job {id}"),
                    ),
                    Some(j) => {
                        slot_of[id] += 1;
                        match j.state {
                            JobState::Running {
                                machine, device, ..
                            } if machine == mi && device == dev => {}
                            _ => push(
                                ViolationKind::DoubleDispatch,
                                format!(
                                    "machine {mi} {dev:?} slot holds job {id} whose state is {:?}",
                                    j.state
                                ),
                            ),
                        }
                    }
                }
            }
        }

        // Per-job placement: every job is reachable from where its state
        // says it lives.
        for (id, j) in self.jobs.iter().enumerate() {
            match &j.state {
                JobState::Queued => {
                    if queued_seen[id] == 0 {
                        push(
                            ViolationKind::JobLost,
                            format!("job {id} is Queued but absent from the queue"),
                        );
                    }
                }
                JobState::Running {
                    machine, device, ..
                } => {
                    match self.machines.get(*machine) {
                        None => push(
                            ViolationKind::JobLost,
                            format!("job {id} claims unknown machine {machine}"),
                        ),
                        Some(m) => {
                            if m.down {
                                push(
                                    ViolationKind::JobLost,
                                    format!("job {id} is Running on crashed machine {machine}"),
                                );
                            } else if m.running[device.index()] != Some(id) {
                                push(
                                    ViolationKind::JobLost,
                                    format!(
                                        "job {id} is Running on machine {machine} {device:?} \
                                         but the slot disagrees"
                                    ),
                                );
                            }
                        }
                    }
                    if slot_of[id] > 1 {
                        push(
                            ViolationKind::DoubleDispatch,
                            format!("job {id} occupies {} slots", slot_of[id]),
                        );
                    }
                }
                JobState::Rejected | JobState::Done { .. } | JobState::DeadLetter { .. } => {}
            }
        }

        // Books balance: counters against the job table.
        let count = |f: &dyn Fn(&JobCore) -> bool| self.jobs.iter().filter(|j| f(j)).count();
        let checks: [(&str, usize, usize); 6] = [
            ("accepted", self.counters.accepted, self.jobs.len()),
            (
                "rejected",
                self.counters.rejected,
                count(&|j| j.state == JobState::Rejected),
            ),
            (
                "completed",
                self.counters.completed,
                count(&|j| matches!(j.state, JobState::Done { .. })),
            ),
            (
                "dead_lettered",
                self.counters.dead_lettered,
                count(&|j| matches!(j.state, JobState::DeadLetter { .. })),
            ),
            (
                "requeued",
                self.counters.requeued,
                self.jobs.iter().map(|j| j.retries as usize).sum(),
            ),
            (
                "dispatched",
                self.counters.dispatched,
                self.jobs.iter().map(|j| j.dispatches as usize).sum(),
            ),
        ];
        for (name, counter, table) in checks {
            if counter != table {
                push(
                    ViolationKind::BooksImbalance,
                    format!("counter {name}={counter} but the job table says {table}"),
                );
            }
        }
        out
    }

    /// Check that journal replay reconstructs *this* state: same jobs,
    /// matching dispositions and retry counts. In-flight work maps to
    /// `Pending` (replay re-queues it).
    pub fn check_replay_consistency(&self, recovered: &Recovered) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut push = |detail: String| {
            out.push(Violation {
                kind: ViolationKind::ReplayMismatch,
                detail,
            });
        };
        if recovered.jobs.len() != self.jobs.len() {
            push(format!(
                "replay reconstructs {} job(s) but the state holds {}",
                recovered.jobs.len(),
                self.jobs.len()
            ));
            return out;
        }
        for (id, (job, rj)) in self.jobs.iter().zip(&recovered.jobs).enumerate() {
            if rj.name != job.name || rj.program != job.program {
                push(format!(
                    "job {id} identity mismatch: state has {}/{}, replay has {}/{}",
                    job.name, job.program, rj.name, rj.program
                ));
            }
            if rj.retries != job.retries {
                push(format!(
                    "job {id} retries mismatch: state has {}, replay has {}",
                    job.retries, rj.retries
                ));
            }
            let ok = match (&job.state, &rj.disposition) {
                (JobState::Queued, Disposition::Pending) => true,
                (JobState::Running { .. }, Disposition::Pending) => true,
                (JobState::Rejected, Disposition::Rejected) => true,
                (
                    JobState::Done {
                        machine,
                        device,
                        end_s,
                        ..
                    },
                    Disposition::Done {
                        machine: rm,
                        device: rd,
                        end_s: re,
                        ..
                    },
                ) => machine == rm && device == rd && end_s == re,
                (JobState::DeadLetter { reason }, Disposition::Dead { reason: rr }) => reason == rr,
                _ => false,
            };
            if !ok {
                push(format!(
                    "job {id} disposition mismatch: state has {:?}, replay has {:?}",
                    job.state, rj.disposition
                ));
            }
        }
        out
    }

    /// A 64-bit fingerprint of the whole state (FNV-1a over a canonical
    /// byte walk), for the model checker's visited-state memoization.
    /// Equal states fingerprint equal; collisions are possible but at
    /// 64 bits negligible at model-checking scope.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.jobs.len() as u64);
        for j in &self.jobs {
            h.str(&j.name);
            h.str(&j.program);
            h.f64(j.scale);
            h.u64(u64::from(j.retries));
            h.u64(u64::from(j.dispatches));
            match &j.state {
                JobState::Queued => h.u64(0),
                JobState::Rejected => h.u64(1),
                JobState::Running {
                    machine,
                    device,
                    start_s,
                    predicted_s,
                } => {
                    h.u64(2);
                    h.u64(*machine as u64);
                    h.u64(device.index() as u64);
                    h.f64(*start_s);
                    h.f64(*predicted_s);
                }
                JobState::Done {
                    machine,
                    device,
                    start_s,
                    end_s,
                    predicted_s,
                } => {
                    h.u64(3);
                    h.u64(*machine as u64);
                    h.u64(device.index() as u64);
                    h.f64(*start_s);
                    h.f64(*end_s);
                    h.f64(*predicted_s);
                }
                JobState::DeadLetter { reason } => {
                    h.u64(4);
                    h.str(reason);
                }
            }
        }
        h.u64(self.queue.len() as u64);
        for &id in &self.queue {
            h.u64(id as u64);
        }
        h.u64(self.machines.len() as u64);
        for m in &self.machines {
            h.u64(u64::from(m.down));
            for slot in m.running {
                match slot {
                    Some(id) => {
                        h.u64(1);
                        h.u64(id as u64);
                    }
                    None => h.u64(0),
                }
            }
        }
        h.u64(u64::from(self.shutdown));
        for c in [
            self.counters.accepted,
            self.counters.rejected,
            self.counters.dispatched,
            self.counters.completed,
            self.counters.requeued,
            self.counters.dead_lettered,
            self.counters.evictions,
        ] {
            h.u64(c as u64);
        }
        h.finish()
    }
}

/// FNV-1a, 64-bit. Deterministic across runs and platforms (no
/// `RandomState`), which keeps model-checking traces reproducible.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::replay;

    fn retry() -> RetryPolicy {
        RetryPolicy {
            max_retries: 1,
            backoff_base_s: 0.01,
            backoff_max_s: 0.05,
        }
    }

    fn clean(st: &ServiceState) {
        let v = st.check_invariants();
        assert!(v.is_empty(), "violations: {v:?}");
    }

    /// Journal a transition's records and check replay agrees with the
    /// state at the end.
    fn consistent(st: &ServiceState, records: &[Record]) {
        let (recovered, report) = replay(records);
        assert!(!report.has_errors(), "{}", report.render_human());
        let v = st.check_replay_consistency(&recovered);
        assert!(v.is_empty(), "replay mismatches: {v:?}");
    }

    #[test]
    fn accept_dispatch_complete_roundtrip() {
        let mut st = ServiceState::new(1);
        let mut log = Vec::new();
        let (a, rec) = st.accept("srad#0", "srad", 0.2).unwrap();
        log.push(rec);
        let (b, rec) = st.accept("lud#0", "lud", 0.1).unwrap();
        log.push(rec);
        assert_eq!((a, b), (0, 1));
        clean(&st);

        log.push(st.dispatch(a, 0, Device::Gpu, 0.0, 2.0).unwrap());
        log.push(st.dispatch(b, 0, Device::Cpu, 0.0, 3.0).unwrap());
        clean(&st);
        assert_eq!(st.machines[0].running, [Some(b), Some(a)]);

        log.push(st.complete(a, 1.9).unwrap());
        log.push(st.complete(b, 3.1).unwrap());
        clean(&st);
        consistent(&st, &log);
        assert_eq!(st.counters.completed, 2);
        assert_eq!(st.counters.dispatched, 2);
        assert!(st.queue.is_empty());
        assert_eq!(st.machines[0].running, [None, None]);
    }

    #[test]
    fn illegal_transitions_are_refused_and_harmless() {
        let mut st = ServiceState::new(1);
        let (a, _) = st.accept("srad#0", "srad", 0.2).unwrap();
        let before = st.clone();
        assert_eq!(st.complete(a, 1.0), Err(TransitionError::NotRunning(a)));
        assert_eq!(
            st.dispatch(7, 0, Device::Cpu, 0.0, 1.0),
            Err(TransitionError::UnknownJob(7))
        );
        assert_eq!(
            st.dispatch(a, 3, Device::Cpu, 0.0, 1.0),
            Err(TransitionError::UnknownMachine(3))
        );
        assert_eq!(before, st, "failed transitions must not mutate");

        st.dispatch(a, 0, Device::Cpu, 0.0, 1.0).unwrap();
        assert_eq!(
            st.dispatch(a, 0, Device::Cpu, 1.0, 1.0),
            Err(TransitionError::NotQueued(a))
        );
        let (b, _) = st.accept("lud#0", "lud", 0.1).unwrap();
        assert_eq!(
            st.dispatch(b, 0, Device::Cpu, 1.0, 1.0),
            Err(TransitionError::SlotBusy {
                machine: 0,
                device: Device::Cpu,
                occupant: a
            })
        );
        clean(&st);
    }

    #[test]
    fn fail_retries_then_dead_letters() {
        let mut st = ServiceState::new(1);
        let mut log = Vec::new();
        let (a, rec) = st.accept("srad#0", "srad", 0.2).unwrap();
        log.push(rec);
        log.push(st.dispatch(a, 0, Device::Gpu, 0.0, 2.0).unwrap());
        let r1 = st.fail(a, &retry(), "injected job failure").unwrap();
        log.push(r1.record.clone());
        assert!(matches!(
            r1.outcome,
            RequeueOutcome::Retry { attempt: 1, .. }
        ));
        assert_eq!(st.jobs[a].state, JobState::Queued);
        assert_eq!(st.counters.requeued, 1);
        clean(&st);

        log.push(st.dispatch(a, 0, Device::Gpu, 1.0, 2.0).unwrap());
        let r2 = st.fail(a, &retry(), "injected job failure").unwrap();
        log.push(r2.record.clone());
        assert!(matches!(
            r2.outcome,
            RequeueOutcome::DeadLetter { attempts: 2 }
        ));
        match &st.jobs[a].state {
            JobState::DeadLetter { reason } => {
                assert!(reason.contains("2 attempt"), "reason: {reason}");
            }
            other => panic!("expected dead-letter, got {other:?}"),
        }
        assert_eq!(st.counters.dead_lettered, 1);
        clean(&st);
        consistent(&st, &log);
    }

    #[test]
    fn crash_evicts_both_slots() {
        let mut st = ServiceState::new(2);
        let mut log = Vec::new();
        for (name, program) in [("srad#0", "srad"), ("lud#0", "lud"), ("nw#0", "nw")] {
            let (_, rec) = st.accept(name, program, 0.1).unwrap();
            log.push(rec);
        }
        log.push(st.dispatch(0, 0, Device::Cpu, 0.0, 2.0).unwrap());
        log.push(st.dispatch(1, 0, Device::Gpu, 0.0, 2.0).unwrap());
        log.push(st.dispatch(2, 1, Device::Gpu, 0.0, 2.0).unwrap());

        let (evict, reports) = st.crash(0, 1.5, &retry(), "machine crash").unwrap();
        log.push(evict);
        for r in &reports {
            log.push(r.record.clone());
        }
        assert_eq!(reports.len(), 2);
        assert!(st.machines[0].down);
        assert_eq!(st.machines[0].running, [None, None]);
        // Both victims got their first retry and went back to the queue.
        assert_eq!(st.queue.len(), 2);
        assert_eq!(st.counters.evictions, 1);
        assert_eq!(st.counters.requeued, 2);
        // Job 2 is untouched on the surviving machine.
        assert!(matches!(st.jobs[2].state, JobState::Running { .. }));
        clean(&st);
        consistent(&st, &log);

        // A second crash of the same machine is refused.
        assert_eq!(
            st.crash(0, 2.0, &retry(), "machine crash"),
            Err(TransitionError::MachineDown(0))
        );
        // Dispatching to the dead machine is refused.
        assert_eq!(
            st.dispatch(st.queue[0], 0, Device::Cpu, 2.0, 1.0),
            Err(TransitionError::MachineDown(0))
        );
    }

    #[test]
    fn restore_matches_replay_of_emitted_records() {
        let mut st = ServiceState::new(2);
        let mut log = Vec::new();
        for (name, program) in [("srad#0", "srad"), ("lud#0", "lud"), ("nw#0", "nw")] {
            let (_, rec) = st.accept(name, program, 0.1).unwrap();
            log.push(rec);
        }
        log.push(st.reject(2).unwrap());
        log.push(st.dispatch(0, 0, Device::Gpu, 0.0, 2.0).unwrap());
        log.push(st.complete(0, 1.8).unwrap());
        log.push(st.dispatch(1, 1, Device::Cpu, 0.0, 3.0).unwrap());
        let r = st.fail(1, &retry(), "injected job failure").unwrap();
        log.push(r.record);
        clean(&st);

        let (recovered, report) = replay(&log);
        assert!(report.is_empty(), "{}", report.render_human());
        let restored = ServiceState::restore_from(&recovered, 2);
        clean(&restored);
        assert!(restored.check_replay_consistency(&recovered).is_empty());
        // The restored state agrees with the live one on every
        // journal-visible fact (machine slots are engine-side and reset).
        assert_eq!(restored.jobs.len(), st.jobs.len());
        for (live, back) in st.jobs.iter().zip(&restored.jobs) {
            assert_eq!(live.state, back.state);
            assert_eq!(live.retries, back.retries);
        }
        assert_eq!(restored.counters.completed, st.counters.completed);
        assert_eq!(restored.counters.requeued, st.counters.requeued);
        assert_eq!(restored.counters.rejected, st.counters.rejected);
    }

    #[test]
    fn shutdown_refuses_admission() {
        let mut st = ServiceState::new(1);
        st.begin_shutdown();
        assert_eq!(
            st.accept("srad#0", "srad", 0.2),
            Err(TransitionError::ShuttingDown)
        );
        clean(&st);
    }

    #[test]
    fn fingerprint_tracks_state_identity() {
        let mut a = ServiceState::new(1);
        let mut b = ServiceState::new(1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.accept("srad#0", "srad", 0.2).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.accept("srad#0", "srad", 0.2).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.dispatch(0, 0, Device::Cpu, 0.0, 1.0).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let snap = a.clone();
        assert_eq!(snap.fingerprint(), a.fingerprint());
    }

    #[test]
    fn seeded_corruption_is_caught() {
        // The checks the model checker relies on actually fire.
        let mut st = ServiceState::new(1);
        st.accept("srad#0", "srad", 0.2).unwrap();
        st.queue.clear(); // lose the job
        assert!(st
            .check_invariants()
            .iter()
            .any(|v| v.kind == ViolationKind::JobLost));

        let mut st = ServiceState::new(1);
        st.accept("srad#0", "srad", 0.2).unwrap();
        st.queue.push_back(0); // duplicate admission
        assert!(st
            .check_invariants()
            .iter()
            .any(|v| v.kind == ViolationKind::DoubleDispatch));

        let mut st = ServiceState::new(1);
        st.accept("srad#0", "srad", 0.2).unwrap();
        st.counters.accepted = 5;
        assert!(st
            .check_invariants()
            .iter()
            .any(|v| v.kind == ViolationKind::BooksImbalance));
    }
}
