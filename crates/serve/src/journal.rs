//! Crash-safe service journal: an append-only, fsync'd line-JSON log of
//! every admission, dispatch, completion, requeue, dead-letter, and
//! eviction the daemon performs.
//!
//! The journal is the daemon's write-ahead record: each record is one
//! JSON object on one line, flushed and `sync_data`'d before the state
//! change it describes becomes observable to clients. A daemon killed at
//! any byte can therefore be restarted with `--recover`: [`read_journal`]
//! tolerates a torn final line (the kill landed mid-write) and
//! [`replay`] folds the surviving prefix into one [`Disposition`] per
//! job — done work stays done, in-flight work is re-queued, and nothing
//! is double-dispatched.
//!
//! The format is versioned by [`JOURNAL_FORMAT_VERSION`], the sibling of
//! `runtime::CACHE_FORMAT_VERSION`: bump it whenever a record's schema
//! changes so stale journals are refused (SRV007) instead of
//! misinterpreted. `docs/FAULTS.md` documents the format and the
//! recovery semantics.

use crate::json::{obj, Json};
use apu_sim::Device;
use corun_verify::{Code, Diagnostic, Report};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Journal schema revision; mismatches are refused at recovery with
/// SRV007. Versioned alongside `runtime::CACHE_FORMAT_VERSION`.
/// v2 added `machines` to `meta`/`recovered` and the `cap`, `shutdown`,
/// and `snapshot` record types that make journals deterministically
/// replayable (`docs/REPLAY.md`).
pub const JOURNAL_FORMAT_VERSION: u32 = 2;

/// One journal record. The first line of every journal is `Meta`; every
/// later line describes one state transition, in commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Journal header: format version and machine count, so `corun
    /// replay` can rebuild the service shape without out-of-band flags.
    Meta {
        /// The [`JOURNAL_FORMAT_VERSION`] the journal was written under.
        version: u32,
        /// Simulated machines the daemon was started with.
        machines: usize,
    },
    /// A recovery generation boundary: the daemon restarted and replayed
    /// everything above this line; `jobs` jobs were reconstructed.
    Recovered {
        /// Jobs known after replay.
        jobs: usize,
        /// Machine count of the restarted incarnation.
        machines: usize,
    },
    /// A job passed admission. `id`s are dense and in admission order.
    Accept {
        /// The assigned job id.
        id: usize,
        /// Instance name (`program#k`).
        name: String,
        /// Program the job was built from.
        program: String,
        /// Workload scale factor.
        scale: f64,
    },
    /// A job was profiled but refused (cap-infeasible).
    Reject {
        /// The assigned job id.
        id: usize,
    },
    /// A job was handed to a simulated machine.
    Dispatch {
        /// The job id.
        id: usize,
        /// Hosting machine index.
        machine: usize,
        /// Device it was placed on.
        device: Device,
        /// Dispatch time on that machine's simulated clock, seconds.
        start_s: f64,
        /// Model-predicted duration, seconds.
        predicted_s: f64,
        /// Execution attempt (0 for the first dispatch).
        attempt: u32,
    },
    /// A job completed.
    Done {
        /// The job id.
        id: usize,
        /// Hosting machine index.
        machine: usize,
        /// Device it ran on.
        device: Device,
        /// Dispatch time, simulated seconds.
        start_s: f64,
        /// Completion time, simulated seconds.
        end_s: f64,
        /// Model-predicted duration at dispatch, seconds.
        predicted_s: f64,
    },
    /// A failed or evicted job went back to the queue.
    Requeue {
        /// The job id.
        id: usize,
        /// Retry attempt this requeue starts (1-based).
        attempt: u32,
        /// Back-off before the job becomes dispatchable again, seconds.
        backoff_s: f64,
        /// Why the previous execution was lost.
        reason: String,
    },
    /// A job exhausted its retry budget and was dead-lettered.
    Dead {
        /// The job id.
        id: usize,
        /// Why the job was given up on.
        reason: String,
    },
    /// A machine crashed and its in-flight work was evicted.
    Evict {
        /// The crashed machine's index.
        machine: usize,
        /// Simulated time of the crash, seconds.
        at_s: f64,
    },
    /// The power cap was rebalanced (operator `set_cap` or a fleet
    /// coordinator repartition).
    CapChange {
        /// The new cap, watts.
        cap_w: f64,
    },
    /// Graceful shutdown began: no further admissions, the queue drains.
    ShutdownBegin,
    /// A periodic checkpoint of the full `ServiceState`, written at a
    /// quiescent point (state and journal agree). Bounds replay time and
    /// lets `corun replay` verify fingerprint equality mid-run.
    Snapshot {
        /// Records written before this snapshot (its own journal index).
        seq: u64,
        /// `ServiceState::fingerprint()` at the checkpoint.
        fingerprint: u64,
        /// The encoded state (see `snapshot::encode_state`).
        state: String,
    },
}

fn device_str(d: Device) -> &'static str {
    match d {
        Device::Cpu => "cpu",
        Device::Gpu => "gpu",
    }
}

fn parse_device(s: &str) -> Option<Device> {
    match s {
        "cpu" => Some(Device::Cpu),
        "gpu" => Some(Device::Gpu),
        _ => None,
    }
}

impl Record {
    /// Render as one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let v = match self {
            Record::Meta { version, machines } => obj(vec![
                ("t", Json::Str("meta".into())),
                ("version", Json::Num(*version as f64)),
                ("machines", Json::Num(*machines as f64)),
            ]),
            Record::Recovered { jobs, machines } => obj(vec![
                ("t", Json::Str("recovered".into())),
                ("jobs", Json::Num(*jobs as f64)),
                ("machines", Json::Num(*machines as f64)),
            ]),
            Record::Accept {
                id,
                name,
                program,
                scale,
            } => obj(vec![
                ("t", Json::Str("accept".into())),
                ("id", Json::Num(*id as f64)),
                ("name", Json::Str(name.clone())),
                ("program", Json::Str(program.clone())),
                ("scale", Json::Num(*scale)),
            ]),
            Record::Reject { id } => obj(vec![
                ("t", Json::Str("reject".into())),
                ("id", Json::Num(*id as f64)),
            ]),
            Record::Dispatch {
                id,
                machine,
                device,
                start_s,
                predicted_s,
                attempt,
            } => obj(vec![
                ("t", Json::Str("dispatch".into())),
                ("id", Json::Num(*id as f64)),
                ("machine", Json::Num(*machine as f64)),
                ("device", Json::Str(device_str(*device).into())),
                ("start_s", Json::Num(*start_s)),
                ("predicted_s", Json::Num(*predicted_s)),
                ("attempt", Json::Num(*attempt as f64)),
            ]),
            Record::Done {
                id,
                machine,
                device,
                start_s,
                end_s,
                predicted_s,
            } => obj(vec![
                ("t", Json::Str("done".into())),
                ("id", Json::Num(*id as f64)),
                ("machine", Json::Num(*machine as f64)),
                ("device", Json::Str(device_str(*device).into())),
                ("start_s", Json::Num(*start_s)),
                ("end_s", Json::Num(*end_s)),
                ("predicted_s", Json::Num(*predicted_s)),
            ]),
            Record::Requeue {
                id,
                attempt,
                backoff_s,
                reason,
            } => obj(vec![
                ("t", Json::Str("requeue".into())),
                ("id", Json::Num(*id as f64)),
                ("attempt", Json::Num(*attempt as f64)),
                ("backoff_s", Json::Num(*backoff_s)),
                ("reason", Json::Str(reason.clone())),
            ]),
            Record::Dead { id, reason } => obj(vec![
                ("t", Json::Str("dead".into())),
                ("id", Json::Num(*id as f64)),
                ("reason", Json::Str(reason.clone())),
            ]),
            Record::Evict { machine, at_s } => obj(vec![
                ("t", Json::Str("evict".into())),
                ("machine", Json::Num(*machine as f64)),
                ("at_s", Json::Num(*at_s)),
            ]),
            Record::CapChange { cap_w } => obj(vec![
                ("t", Json::Str("cap".into())),
                ("cap_w", Json::Num(*cap_w)),
            ]),
            Record::ShutdownBegin => obj(vec![("t", Json::Str("shutdown".into()))]),
            Record::Snapshot {
                seq,
                fingerprint,
                state,
            } => obj(vec![
                ("t", Json::Str("snapshot".into())),
                ("seq", Json::Num(*seq as f64)),
                // 64-bit fingerprints don't fit a JSON double; hex string.
                ("fp", Json::Str(format!("{fingerprint:016x}"))),
                ("state", Json::Str(state.clone())),
            ]),
        };
        v.render()
    }

    /// Parse one journal line. `Ok(None)` means the record type is
    /// unknown (written by a newer minor revision) and should be skipped.
    pub fn from_json(line: &str) -> Result<Option<Record>, String> {
        let v = Json::parse(line)?;
        let t = v
            .get("t")
            .and_then(Json::as_str)
            .ok_or("record missing `t`")?;
        let idx = |key: &str| {
            v.get(key)
                .and_then(Json::as_index)
                .ok_or_else(|| format!("record missing `{key}`"))
        };
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record missing `{key}`"))
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("record missing `{key}`"))
        };
        let dev = || {
            text("device").and_then(|s| parse_device(&s).ok_or_else(|| format!("bad device `{s}`")))
        };
        let rec = match t {
            // `machines` arrived in v2; default it so a v1 header still
            // parses far enough to earn the version-mismatch diagnostic
            // instead of a torn-tail one.
            "meta" => Record::Meta {
                version: idx("version")? as u32,
                machines: v.get("machines").and_then(Json::as_index).unwrap_or(1),
            },
            "recovered" => Record::Recovered {
                jobs: idx("jobs")?,
                machines: v.get("machines").and_then(Json::as_index).unwrap_or(1),
            },
            "accept" => Record::Accept {
                id: idx("id")?,
                name: text("name")?,
                program: text("program")?,
                scale: num("scale")?,
            },
            "reject" => Record::Reject { id: idx("id")? },
            "dispatch" => Record::Dispatch {
                id: idx("id")?,
                machine: idx("machine")?,
                device: dev()?,
                start_s: num("start_s")?,
                predicted_s: num("predicted_s")?,
                attempt: idx("attempt")? as u32,
            },
            "done" => Record::Done {
                id: idx("id")?,
                machine: idx("machine")?,
                device: dev()?,
                start_s: num("start_s")?,
                end_s: num("end_s")?,
                predicted_s: num("predicted_s")?,
            },
            "requeue" => Record::Requeue {
                id: idx("id")?,
                attempt: idx("attempt")? as u32,
                backoff_s: num("backoff_s")?,
                reason: text("reason")?,
            },
            "dead" => Record::Dead {
                id: idx("id")?,
                reason: text("reason")?,
            },
            "evict" => Record::Evict {
                machine: idx("machine")?,
                at_s: num("at_s")?,
            },
            "cap" => Record::CapChange {
                cap_w: num("cap_w")?,
            },
            "shutdown" => Record::ShutdownBegin,
            "snapshot" => Record::Snapshot {
                seq: idx("seq")? as u64,
                fingerprint: text("fp").and_then(|s| {
                    u64::from_str_radix(&s, 16).map_err(|e| format!("bad fingerprint `{s}`: {e}"))
                })?,
                state: text("state")?,
            },
            _ => return Ok(None),
        };
        Ok(Some(rec))
    }
}

/// An open journal file. Every [`Journal::append`] flushes and
/// `sync_data`s before returning, so a record the caller has seen
/// committed survives `kill -9`.
pub struct Journal {
    file: File,
    path: PathBuf,
    seq: u64,
}

impl Journal {
    /// Create (truncate) a fresh journal and write the `Meta` header.
    pub fn create(path: &Path, machines: usize) -> std::io::Result<Journal> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut j = Journal {
            file,
            path: path.to_path_buf(),
            seq: 0,
        };
        j.append(&Record::Meta {
            version: JOURNAL_FORMAT_VERSION,
            machines,
        })?;
        Ok(j)
    }

    /// Create (truncate) a fresh journal without writing the service
    /// `Meta` header. For callers that own their own record vocabulary
    /// (the fleet coordinator log) but want the same durable writer.
    pub fn create_raw(path: &Path) -> std::io::Result<Journal> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            seq: 0,
        })
    }

    /// Open an existing journal for appending (after a successful
    /// recovery replay). `seq` is the number of records already in the
    /// file, so snapshot sequence numbers stay contiguous across
    /// restarts.
    pub fn open_append(path: &Path, seq: u64) -> std::io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            seq,
        })
    }

    /// Durably append one record: write the line, flush, `sync_data`.
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        let mut line = record.to_json();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.seq += 1;
        Ok(())
    }

    /// Durably append one pre-rendered line (no trailing newline):
    /// same write/flush/`sync_data` discipline as [`Journal::append`],
    /// for callers with their own record vocabulary.
    pub fn append_line(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.seq += 1;
        Ok(())
    }

    /// Records written to the file so far (the journal index the next
    /// record will take).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What replay concluded about one job.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Accepted; never completed (queued or in-flight at the kill).
    /// Recovery re-queues it.
    Pending,
    /// Refused at admission.
    Rejected,
    /// Completed; recovery must not re-dispatch it.
    Done {
        /// Hosting machine index.
        machine: usize,
        /// Device it ran on.
        device: Device,
        /// Dispatch time, simulated seconds.
        start_s: f64,
        /// Completion time, simulated seconds.
        end_s: f64,
        /// Model-predicted duration at dispatch, seconds.
        predicted_s: f64,
    },
    /// Retries exhausted before the kill.
    Dead {
        /// Why the job was given up on.
        reason: String,
    },
}

/// One job reconstructed by [`replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// Instance name (`program#k`).
    pub name: String,
    /// Program to rebuild the [`apu_sim::JobSpec`] from.
    pub program: String,
    /// Workload scale factor.
    pub scale: f64,
    /// Where the job stood at the last committed record.
    pub disposition: Disposition,
    /// Retry attempts already consumed (counted off `Requeue` records).
    pub retries: u32,
}

/// The outcome of replaying a journal.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// One entry per job id, dense in admission order.
    pub jobs: Vec<RecoveredJob>,
}

/// Read a journal file into records, tolerantly.
///
/// Problems surface as SRV007 diagnostics in the returned report rather
/// than hard errors: an unreadable file or a bad/missing version header
/// yields no records (error severity — the journal cannot be trusted); a
/// line that fails to parse ends the usable prefix (warning — the tail
/// was torn by a kill mid-write, everything before it is intact).
///
/// Records that parse are then run through [`check_causality`]: a
/// journal whose records are individually valid but causally impossible
/// (e.g. `done` before `dispatch`) earns error-severity SRV010
/// diagnostics, and recovery abandons it rather than replaying a
/// fabricated history.
pub fn read_journal(path: &Path) -> (Vec<Record>, Report) {
    let scan = scan_journal(path);
    (scan.records, scan.report)
}

/// Everything [`scan_journal`] learned about a journal file, including
/// the byte geometry recovery needs to repair a torn tail.
#[derive(Debug)]
pub struct JournalScan {
    /// The records of the intact prefix (after the version gate).
    pub records: Vec<Record>,
    /// SRV007/SRV010 diagnostics; `has_errors()` means the journal must
    /// be abandoned.
    pub report: Report,
    /// Byte length of the intact prefix: every complete, parseable line
    /// lies below this offset.
    pub valid_len: u64,
    /// Byte offset of the first corrupt record, if the scan hit one.
    pub torn_at: Option<u64>,
    /// The last intact record was not newline-terminated (the kill
    /// landed between the payload and the `\n`); [`repair_tail`]
    /// restores the terminator so appends start on a fresh line.
    pub needs_newline: bool,
}

/// Scan a journal file byte-accurately: parse the intact prefix, locate
/// the first corrupt record (if any) by byte offset, and run the header
/// and causality gates. [`read_journal`] is the records-and-report view
/// of this; recovery uses the full scan to [`repair_tail`] before
/// reopening the file for appends.
pub fn scan_journal(path: &Path) -> JournalScan {
    let mut report = Report::new();
    let loc = path.display().to_string();
    let mut scan = JournalScan {
        records: Vec::new(),
        report: Report::new(),
        valid_len: 0,
        torn_at: None,
        needs_newline: false,
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            report.push(Diagnostic::new(
                Code::Srv007,
                loc,
                format!("cannot read journal: {e}"),
            ));
            scan.report = report;
            return scan;
        }
    };
    let mut reader = BufReader::new(file);
    let mut buf: Vec<u8> = Vec::new();
    let mut offset: u64 = 0;
    let mut lineno: usize = 0;
    let torn = |report: &mut Report, lineno: usize, offset: u64, why: &str| {
        report.push(
            Diagnostic::new(
                Code::Srv007,
                format!("{loc}:{}", lineno + 1),
                format!("torn journal tail: {why} (first corrupt record at byte {offset})"),
            )
            .with_help("the daemon was killed mid-write; the intact prefix is recovered"),
        );
    };
    loop {
        buf.clear();
        let n = match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) => {
                scan.torn_at = Some(offset);
                torn(&mut report, lineno, offset, &e.to_string());
                break;
            }
        };
        let line_start = offset;
        offset += n as u64;
        lineno += 1;
        let terminated = buf.last() == Some(&b'\n');
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            if terminated {
                scan.valid_len = offset;
            }
            continue;
        }
        match Record::from_json(line) {
            Ok(Some(rec)) => {
                scan.records.push(rec);
                scan.valid_len = offset;
                // An unterminated payload that still parses is durable;
                // only the `\n` needs repair before appends resume.
                scan.needs_newline = !terminated;
            }
            Ok(None) => {
                report.push(Diagnostic::new(
                    Code::Srv007,
                    format!("{loc}:{lineno}"),
                    "unknown record type; skipped".to_string(),
                ));
                scan.valid_len = offset;
                scan.needs_newline = !terminated;
            }
            Err(e) => {
                scan.torn_at = Some(line_start);
                torn(&mut report, lineno - 1, line_start, &e);
                break;
            }
        }
    }
    // The header gate: a missing or mismatched Meta invalidates the lot.
    match scan.records.first() {
        Some(Record::Meta { version, .. }) if *version == JOURNAL_FORMAT_VERSION => {}
        Some(Record::Meta { version, .. }) => {
            report.push(
                Diagnostic::new(
                    Code::Srv007,
                    loc,
                    format!(
                        "journal format v{version} does not match this build (v{JOURNAL_FORMAT_VERSION})"
                    ),
                )
                .with_severity(corun_verify::Severity::Error),
            );
            scan.records.clear();
        }
        _ => {
            report.push(
                Diagnostic::new(Code::Srv007, loc, "journal has no version header")
                    .with_severity(corun_verify::Severity::Error),
            );
            scan.records.clear();
        }
    }
    report.merge(check_causality(&scan.records));
    scan.report = report;
    scan
}

/// Truncate a torn tail off a journal so the file once again ends at a
/// record boundary, and restore a missing final newline. Recovery calls
/// this (with the scan it already has) before reopening the journal for
/// appends — otherwise the first post-recovery record would concatenate
/// onto the torn fragment and corrupt the file for the *next* recovery.
/// Returns whether the file was modified.
pub fn repair_tail(path: &Path, scan: &JournalScan) -> std::io::Result<bool> {
    let mut changed = false;
    if scan.torn_at.is_some() {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(scan.valid_len)?;
        f.sync_data()?;
        changed = true;
    }
    if scan.needs_newline {
        let mut f = OpenOptions::new().append(true).open(path)?;
        f.write_all(b"\n")?;
        f.sync_data()?;
        changed = true;
    }
    Ok(changed)
}

/// Check that a record sequence tells a causally possible story.
///
/// [`replay`] is deliberately tolerant — it folds whatever records it is
/// given and flags only local inconsistencies (SRV009). That tolerance
/// would let a journal whose records are *individually* valid but out of
/// order (a `done` before its `dispatch`, overlapping dispatches of one
/// job, retry attempts that skip numbers) replay into a state the
/// service never passed through. This pass enforces the ordering rules
/// the live daemon's transitions guarantee:
///
/// * `done`, `requeue`, and `dead` each close a dispatch that is
///   actually open for that job, and `done` names the machine/device the
///   open dispatch used;
/// * a job is never dispatched while a dispatch for it is open, nor
///   after it finished (`done`/`dead`) or was rejected;
/// * `reject` only hits a job with no open dispatch and no terminal
///   state;
/// * `dispatch` carries `attempt` equal to the retries consumed so far,
///   and each `requeue` carries exactly the next attempt number;
/// * a `recovered` boundary closes every open dispatch (in-flight work
///   became pending at the kill).
///
/// A dispatch left open at the end of the journal is *not* a violation:
/// that is exactly what a kill leaves behind, and every record-boundary
/// prefix of a causal journal is itself causal. Violations are SRV010 at
/// error severity, so [`read_journal`] callers that gate on
/// `Report::has_errors` abandon the journal instead of replaying it.
pub fn check_causality(records: &[Record]) -> Report {
    struct Track {
        open: Option<(usize, Device)>,
        retries: u32,
        terminal: Option<&'static str>,
    }
    let mut report = Report::new();
    let mut jobs: Vec<Track> = Vec::new();
    let mut bad = |rec: usize, msg: String| {
        report.push(
            Diagnostic::new(Code::Srv010, format!("journal record {rec}"), msg).with_help(
                "this journal's history is causally impossible; recovery abandons it".to_string(),
            ),
        );
    };
    for (k, rec) in records.iter().enumerate() {
        match rec {
            Record::Meta { .. }
            | Record::Evict { .. }
            | Record::CapChange { .. }
            | Record::ShutdownBegin
            | Record::Snapshot { .. } => {}
            Record::Recovered { .. } => {
                // A restart boundary: whatever was in flight at the kill
                // was reconstructed as pending, so no dispatch stays open
                // across it.
                for j in &mut jobs {
                    j.open = None;
                }
            }
            Record::Accept { id, .. } => {
                // Density is replay's concern (SRV009); only track the
                // jobs that fit the dense sequence.
                if *id == jobs.len() {
                    jobs.push(Track {
                        open: None,
                        retries: 0,
                        terminal: None,
                    });
                }
            }
            Record::Reject { id } => {
                if let Some(j) = jobs.get_mut(*id) {
                    if let Some((machine, _)) = j.open {
                        bad(
                            k,
                            format!("job {id} rejected while running on machine {machine}"),
                        );
                    } else if let Some(t) = j.terminal {
                        bad(k, format!("job {id} rejected after it was already {t}"));
                    } else {
                        j.terminal = Some("rejected");
                    }
                }
            }
            Record::Dispatch {
                id,
                machine,
                device,
                attempt,
                ..
            } => {
                if let Some(j) = jobs.get_mut(*id) {
                    if let Some((open_m, _)) = j.open {
                        bad(
                            k,
                            format!(
                                "job {id} dispatched to machine {machine} while a dispatch on machine {open_m} is still open"
                            ),
                        );
                    } else if let Some(t) = j.terminal {
                        bad(k, format!("job {id} dispatched after it was already {t}"));
                    } else if *attempt != j.retries {
                        bad(
                            k,
                            format!(
                                "job {id} dispatched as attempt {attempt} but {} retr{} consumed",
                                j.retries,
                                if j.retries == 1 { "y was" } else { "ies were" }
                            ),
                        );
                    } else {
                        j.open = Some((*machine, *device));
                    }
                }
            }
            Record::Done {
                id,
                machine,
                device,
                ..
            } => {
                if let Some(j) = jobs.get_mut(*id) {
                    match j.open {
                        None => bad(
                            k,
                            format!("job {id} done with no open dispatch (done before dispatch?)"),
                        ),
                        Some((open_m, open_d)) if open_m != *machine || open_d != *device => bad(
                            k,
                            format!(
                                "job {id} done on machine {machine}/{} but was dispatched to machine {open_m}/{}",
                                device_str(*device),
                                device_str(open_d)
                            ),
                        ),
                        Some(_) => {
                            j.open = None;
                            j.terminal = Some("done");
                        }
                    }
                }
            }
            Record::Requeue { id, attempt, .. } => {
                if let Some(j) = jobs.get_mut(*id) {
                    if j.open.is_none() {
                        bad(
                            k,
                            format!("job {id} requeued with no open dispatch to fail"),
                        );
                    } else if *attempt != j.retries + 1 {
                        bad(
                            k,
                            format!(
                                "job {id} requeued as attempt {attempt} after attempt {} (retry numbering must be contiguous)",
                                j.retries
                            ),
                        );
                    } else {
                        j.open = None;
                        j.retries = *attempt;
                    }
                }
            }
            Record::Dead { id, .. } => {
                if let Some(j) = jobs.get_mut(*id) {
                    if j.open.is_none() {
                        bad(
                            k,
                            format!("job {id} dead-lettered with no open dispatch to fail"),
                        );
                    } else {
                        j.open = None;
                        j.terminal = Some("dead-lettered");
                    }
                }
            }
        }
    }
    report
}

/// Fold a record sequence into per-job dispositions.
///
/// Inconsistencies (references to unknown ids, completions of already
/// completed jobs) surface as SRV009 diagnostics; the offending record
/// is skipped and replay continues, so one bad record cannot poison the
/// rest of the journal.
pub fn replay(records: &[Record]) -> (Recovered, Report) {
    let mut report = Report::new();
    let mut out = Recovered::default();
    let mut bad = |rec: usize, msg: String| {
        report.push(Diagnostic::new(
            Code::Srv009,
            format!("journal record {rec}"),
            msg,
        ));
    };
    for (k, rec) in records.iter().enumerate() {
        match rec {
            Record::Meta { .. }
            | Record::Recovered { .. }
            | Record::Evict { .. }
            | Record::CapChange { .. }
            | Record::ShutdownBegin
            | Record::Snapshot { .. } => {}
            Record::Accept {
                id,
                name,
                program,
                scale,
            } => {
                if *id != out.jobs.len() {
                    bad(
                        k,
                        format!("accept of job {id} but {} jobs known", out.jobs.len()),
                    );
                    continue;
                }
                out.jobs.push(RecoveredJob {
                    name: name.clone(),
                    program: program.clone(),
                    scale: *scale,
                    disposition: Disposition::Pending,
                    retries: 0,
                });
            }
            Record::Reject { id } => match out.jobs.get_mut(*id) {
                Some(j) => j.disposition = Disposition::Rejected,
                None => bad(k, format!("reject of unknown job {id}")),
            },
            Record::Dispatch { id, .. } => match out.jobs.get(*id) {
                // A dispatch without a matching done means the job was
                // in-flight at the kill: it stays Pending and recovery
                // re-queues it. A dispatch *after* a done is the
                // double-dispatch the journal exists to prevent.
                Some(j) if matches!(j.disposition, Disposition::Done { .. }) => {
                    bad(k, format!("job {id} dispatched after completing"));
                }
                Some(_) => {}
                None => bad(k, format!("dispatch of unknown job {id}")),
            },
            Record::Done {
                id,
                machine,
                device,
                start_s,
                end_s,
                predicted_s,
            } => match out.jobs.get_mut(*id) {
                Some(j) => {
                    if matches!(j.disposition, Disposition::Done { .. }) {
                        bad(k, format!("job {id} completed twice"));
                    } else {
                        j.disposition = Disposition::Done {
                            machine: *machine,
                            device: *device,
                            start_s: *start_s,
                            end_s: *end_s,
                            predicted_s: *predicted_s,
                        };
                    }
                }
                None => bad(k, format!("completion of unknown job {id}")),
            },
            Record::Requeue { id, attempt, .. } => match out.jobs.get_mut(*id) {
                Some(j) => j.retries = (*attempt).max(j.retries),
                None => bad(k, format!("requeue of unknown job {id}")),
            },
            Record::Dead { id, reason } => match out.jobs.get_mut(*id) {
                Some(j) => {
                    j.disposition = Disposition::Dead {
                        reason: reason.clone(),
                    }
                }
                None => bad(k, format!("dead-letter of unknown job {id}")),
            },
        }
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "corun-journal-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Accept {
                id: 0,
                name: "srad#0".into(),
                program: "srad".into(),
                scale: 0.2,
            },
            Record::Accept {
                id: 1,
                name: "lud#0".into(),
                program: "lud".into(),
                scale: 0.1,
            },
            Record::Dispatch {
                id: 0,
                machine: 0,
                device: Device::Gpu,
                start_s: 0.0,
                predicted_s: 3.5,
                attempt: 0,
            },
            Record::Done {
                id: 0,
                machine: 0,
                device: Device::Gpu,
                start_s: 0.0,
                end_s: 3.4,
                predicted_s: 3.5,
            },
            Record::Dispatch {
                id: 1,
                machine: 0,
                device: Device::Cpu,
                start_s: 3.4,
                predicted_s: 2.0,
                attempt: 0,
            },
            Record::Requeue {
                id: 1,
                attempt: 1,
                backoff_s: 0.05,
                reason: "injected job failure".into(),
            },
            Record::Evict {
                machine: 0,
                at_s: 4.0,
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_json() {
        let mut all = sample_records();
        all.extend([
            Record::Meta {
                version: JOURNAL_FORMAT_VERSION,
                machines: 3,
            },
            Record::Recovered {
                jobs: 2,
                machines: 3,
            },
            Record::CapChange { cap_w: 12.5 },
            Record::ShutdownBegin,
            Record::Snapshot {
                seq: 17,
                fingerprint: 0xdead_beef_cafe_f00d,
                state: "{\"jobs\":[],\"queue\":[]}".into(),
            },
        ]);
        for rec in all {
            let line = rec.to_json();
            let back = Record::from_json(&line).unwrap().unwrap();
            assert_eq!(back, rec, "roundtrip failed for {line}");
        }
        // Unknown types are skipped, not errors; garbage is an error.
        assert_eq!(Record::from_json(r#"{"t":"future_thing"}"#).unwrap(), None);
        assert!(Record::from_json("{half a rec").is_err());
        assert!(Record::from_json(r#"{"t":"accept","id":0}"#).is_err());
    }

    #[test]
    fn journal_write_read_replay() {
        let path = temp_path("roundtrip");
        let mut j = Journal::create(&path, 1).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let (records, report) = read_journal(&path);
        assert!(report.is_empty(), "{}", report.render_human());
        assert_eq!(records.len(), 1 + sample_records().len());
        let (rec, replay_report) = replay(&records);
        assert!(replay_report.is_empty(), "{}", replay_report.render_human());
        assert_eq!(rec.jobs.len(), 2);
        assert!(matches!(rec.jobs[0].disposition, Disposition::Done { .. }));
        assert_eq!(rec.jobs[1].disposition, Disposition::Pending);
        assert_eq!(rec.jobs[1].retries, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_keeps_the_intact_prefix() {
        let path = temp_path("torn");
        let mut j = Journal::create(&path, 1).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        // Chop the file mid-way through the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let scan = scan_journal(&path);
        assert!(scan.report.has(Code::Srv007));
        assert!(!scan.report.has_errors(), "a torn tail is recoverable");
        assert_eq!(scan.records.len(), sample_records().len()); // meta + all but the torn one
        let (rec, _) = replay(&scan.records);
        assert_eq!(rec.jobs.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_diagnostic_reports_the_byte_offset() {
        let path = temp_path("torn-offset");
        let mut j = Journal::create(&path, 1).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let bytes = std::fs::read(&path).unwrap();
        // The corrupt record starts right after the last intact newline.
        let cut = bytes.len() - 9;
        let expect_at = bytes[..cut]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap() as u64;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let scan = scan_journal(&path);
        assert_eq!(scan.torn_at, Some(expect_at));
        assert_eq!(scan.valid_len, expect_at);
        let rendered = scan.report.render_human();
        assert!(
            rendered.contains(&format!("first corrupt record at byte {expect_at}")),
            "diagnostic must name the byte offset: {rendered}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repair_tail_restores_a_record_boundary() {
        let path = temp_path("repair");
        let mut j = Journal::create(&path, 1).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let clean = std::fs::read(&path).unwrap();

        // Torn mid-record: repair truncates the fragment, and appends
        // resume on a clean boundary that a later scan fully reads.
        std::fs::write(&path, &clean[..clean.len() - 9]).unwrap();
        let scan = scan_journal(&path);
        assert!(repair_tail(&path, &scan).unwrap());
        let mut j = Journal::open_append(&path, scan.records.len() as u64).unwrap();
        j.append(&Record::Recovered {
            jobs: 2,
            machines: 1,
        })
        .unwrap();
        drop(j);
        let rescan = scan_journal(&path);
        assert!(rescan.torn_at.is_none());
        assert!(
            !rescan.report.has_errors(),
            "{}",
            rescan.report.render_human()
        );
        assert_eq!(rescan.records.len(), sample_records().len() + 1);
        assert!(matches!(
            rescan.records.last(),
            Some(Record::Recovered { jobs: 2, .. })
        ));

        // Missing final newline only: the record is durable; repair
        // restores the terminator without dropping it.
        std::fs::write(&path, &clean[..clean.len() - 1]).unwrap();
        let scan = scan_journal(&path);
        assert!(scan.torn_at.is_none());
        assert!(scan.needs_newline);
        assert_eq!(scan.records.len(), 1 + sample_records().len());
        assert!(repair_tail(&path, &scan).unwrap());
        assert_eq!(std::fs::read(&path).unwrap(), clean);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_refuses_the_journal() {
        let path = temp_path("version");
        std::fs::write(
            &path,
            "{\"t\":\"meta\",\"version\":99}\n{\"t\":\"reject\",\"id\":0}\n",
        )
        .unwrap();
        let (records, report) = read_journal(&path);
        assert!(records.is_empty());
        assert!(report.has(Code::Srv007));
        assert!(report.has_errors(), "a version mismatch is not recoverable");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_flags_inconsistencies_as_srv009() {
        let records = vec![
            Record::Meta {
                version: JOURNAL_FORMAT_VERSION,
                machines: 1,
            },
            Record::Accept {
                id: 0,
                name: "srad#0".into(),
                program: "srad".into(),
                scale: 0.2,
            },
            Record::Done {
                id: 0,
                machine: 0,
                device: Device::Gpu,
                start_s: 0.0,
                end_s: 1.0,
                predicted_s: 1.0,
            },
            // Duplicate completion and an unknown id: both SRV009.
            Record::Done {
                id: 0,
                machine: 0,
                device: Device::Gpu,
                start_s: 0.0,
                end_s: 2.0,
                predicted_s: 1.0,
            },
            Record::Requeue {
                id: 7,
                attempt: 1,
                backoff_s: 0.1,
                reason: "x".into(),
            },
        ];
        let (rec, report) = replay(&records);
        assert_eq!(report.count(Code::Srv009), 2);
        // The first completion wins.
        match &rec.jobs[0].disposition {
            Disposition::Done { end_s, .. } => assert_eq!(*end_s, 1.0),
            other => panic!("expected done, got {other:?}"),
        }
        std::mem::drop(rec);
    }

    #[test]
    fn done_before_dispatch_abandons_the_journal() {
        // The ISSUE example: every record parses and replay would happily
        // fold them, but the story is impossible — `done` precedes its
        // `dispatch`. read_journal must flag it at error severity so
        // recovery abandons the journal.
        let path = temp_path("causality");
        let mut j = Journal::create(&path, 1).unwrap();
        j.append(&Record::Accept {
            id: 0,
            name: "srad#0".into(),
            program: "srad".into(),
            scale: 0.2,
        })
        .unwrap();
        j.append(&Record::Done {
            id: 0,
            machine: 0,
            device: Device::Gpu,
            start_s: 0.0,
            end_s: 1.0,
            predicted_s: 1.0,
        })
        .unwrap();
        j.append(&Record::Dispatch {
            id: 0,
            machine: 0,
            device: Device::Gpu,
            start_s: 0.0,
            predicted_s: 1.0,
            attempt: 0,
        })
        .unwrap();
        drop(j);
        let (_, report) = read_journal(&path);
        assert!(report.has(Code::Srv010), "{}", report.render_human());
        assert!(
            report.has_errors(),
            "causality violations must abandon recovery"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn causality_accepts_every_live_shape() {
        // Clean journals in every shape the daemon actually writes:
        // dispatch/done, dispatch/requeue/redispatch, dead-letter,
        // eviction before the per-job requeues, and a recovery boundary
        // that voids in-flight dispatches.
        let mut records = vec![Record::Meta {
            version: JOURNAL_FORMAT_VERSION,
            machines: 2,
        }];
        records.extend(sample_records());
        // Job 1 was requeued (attempt 1); redispatch and kill in flight.
        records.push(Record::Dispatch {
            id: 1,
            machine: 1,
            device: Device::Cpu,
            start_s: 5.0,
            predicted_s: 2.0,
            attempt: 1,
        });
        // Restart: the open dispatch of job 1 becomes pending again.
        records.push(Record::Recovered {
            jobs: 2,
            machines: 2,
        });
        records.push(Record::Dispatch {
            id: 1,
            machine: 0,
            device: Device::Gpu,
            start_s: 0.0,
            predicted_s: 2.0,
            attempt: 1,
        });
        records.push(Record::Requeue {
            id: 1,
            attempt: 2,
            backoff_s: 0.1,
            reason: "injected job failure".into(),
        });
        records.push(Record::Dispatch {
            id: 1,
            machine: 0,
            device: Device::Cpu,
            start_s: 1.0,
            predicted_s: 2.0,
            attempt: 2,
        });
        records.push(Record::Dead {
            id: 1,
            reason: "gave up".into(),
        });
        let report = check_causality(&records);
        assert!(report.is_empty(), "{}", report.render_human());
        // And every record-boundary prefix is itself causal — exactly
        // the journals a kill can leave behind.
        for cut in 0..=records.len() {
            assert!(
                check_causality(&records[..cut]).is_empty(),
                "prefix {cut} flagged"
            );
        }
    }

    #[test]
    fn causality_rejects_impossible_histories() {
        let accept = |id: usize| Record::Accept {
            id,
            name: format!("srad#{id}"),
            program: "srad".into(),
            scale: 0.2,
        };
        let dispatch = |id: usize, machine: usize, attempt: u32| Record::Dispatch {
            id,
            machine,
            device: Device::Cpu,
            start_s: 0.0,
            predicted_s: 1.0,
            attempt,
        };
        // Overlapping dispatches of one job.
        let r = check_causality(&[accept(0), dispatch(0, 0, 0), dispatch(0, 1, 0)]);
        assert_eq!(r.count(Code::Srv010), 1, "{}", r.render_human());
        // Requeue without an open dispatch.
        let r = check_causality(&[
            accept(0),
            Record::Requeue {
                id: 0,
                attempt: 1,
                backoff_s: 0.1,
                reason: "x".into(),
            },
        ]);
        assert_eq!(r.count(Code::Srv010), 1);
        // Retry numbering must be contiguous: attempt 2 after attempt 0.
        let r = check_causality(&[
            accept(0),
            dispatch(0, 0, 0),
            Record::Requeue {
                id: 0,
                attempt: 2,
                backoff_s: 0.1,
                reason: "x".into(),
            },
        ]);
        assert_eq!(r.count(Code::Srv010), 1);
        // Dispatch attempt must match retries consumed.
        let r = check_causality(&[accept(0), dispatch(0, 0, 3)]);
        assert_eq!(r.count(Code::Srv010), 1);
        // Done on a machine the job was never dispatched to.
        let r = check_causality(&[
            accept(0),
            dispatch(0, 0, 0),
            Record::Done {
                id: 0,
                machine: 1,
                device: Device::Cpu,
                start_s: 0.0,
                end_s: 1.0,
                predicted_s: 1.0,
            },
        ]);
        assert_eq!(r.count(Code::Srv010), 1);
        // Dead-letter without an open dispatch.
        let r = check_causality(&[
            accept(0),
            Record::Dead {
                id: 0,
                reason: "x".into(),
            },
        ]);
        assert_eq!(r.count(Code::Srv010), 1);
        // Reject while running.
        let r = check_causality(&[accept(0), dispatch(0, 0, 0), Record::Reject { id: 0 }]);
        assert_eq!(r.count(Code::Srv010), 1);
        // All SRV010s are errors by default.
        assert!(r.has_errors());
    }

    #[test]
    fn every_prefix_replays_without_errors() {
        // Replay must accept any record-boundary prefix: that is exactly
        // the state a kill can leave behind.
        let mut records = vec![Record::Meta {
            version: JOURNAL_FORMAT_VERSION,
            machines: 2,
        }];
        records.extend(sample_records());
        records.push(Record::Dead {
            id: 1,
            reason: "retries exhausted".into(),
        });
        for cut in 1..=records.len() {
            let (rec, report) = replay(&records[..cut]);
            assert!(report.is_empty(), "prefix {cut}: {}", report.render_human());
            assert!(rec.jobs.len() <= 2);
        }
    }
}
