//! corun-serve: a long-running co-scheduling service daemon.
//!
//! This crate turns the batch pipeline into a *service*: simulated
//! machines (apu-sim [`Session`](apu_sim::Session)s) run continuously on
//! worker threads, an [`OnlinePolicy`](corun_core::OnlinePolicy) decides
//! placement and DVFS levels under the power cap, and clients feed jobs
//! in over a newline-delimited JSON TCP protocol.
//!
//! Layers, bottom up:
//!
//! - [`json`] — a dependency-free JSON value type (parse + render).
//! - [`journal`] — the crash-safe append-only journal: every admission,
//!   dispatch, completion, requeue, dead-letter, and eviction is durably
//!   logged, and [`journal::replay`] reconstructs the exact job table a
//!   killed daemon left behind.
//! - [`state`] — the pure service state machine: admission, dispatch,
//!   completion, retry/dead-letter, crash eviction, and recovery as
//!   side-effect-free transition functions over [`ServiceState`], with
//!   executable safety invariants. The `corun-mc` model checker
//!   exhaustively explores exactly these functions (`docs/MODELCHECK.md`).
//! - [`snapshot`] — the [`ServiceState`] ⇄ JSON snapshot codec behind
//!   the journal's periodic checkpoints; `corun replay` (the
//!   `corun-replay` crate) verifies them bit-identically
//!   (`docs/REPLAY.md`).
//! - [`ring`] — the fixed-size time-series metrics ring behind the
//!   `watch` protocol op and `corun status --watch`.
//! - [`service`] — the daemon core: admission control with a bounded
//!   queue, incremental model growth, per-machine worker threads, live
//!   metrics, fault injection, and degraded-mode rescheduling. A thin
//!   concurrent driver over [`state`]; fully testable in-process.
//! - [`protocol`] — request/response mapping; [`protocol::handle_request`]
//!   is the single entry point, usable without a socket.
//! - [`server`] — the blocking TCP accept loop (thread per connection).
//! - [`client`] — a small blocking client for the CLI and smoke tests,
//!   with capped-exponential-back-off submit retries.
//!
//! See `docs/SERVICE.md` for the wire-format catalogue and error codes,
//! and `docs/FAULTS.md` for the fault model and recovery semantics.

pub mod client;
pub mod journal;
pub mod json;
pub mod protocol;
pub mod ring;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod state;

pub use client::{Client, RetryConfig};
pub use journal::{
    check_causality, read_journal, repair_tail, replay, scan_journal, Disposition, Journal,
    JournalScan, Record, Recovered, RecoveredJob, JOURNAL_FORMAT_VERSION,
};
pub use json::Json;
pub use protocol::{handle_request, PROTOCOL_VERSION};
pub use ring::{MetricsPoint, MetricsRing, RING_CAPACITY};
pub use server::{read_frame, Frame, Server, MAX_FRAME_BYTES};
pub use service::{JobState, JobStatus, MetricsSnapshot, Service, ServiceConfig, SubmitError};
pub use snapshot::{decode_state, encode_state};
pub use state::{
    Counters, FailReport, JobCore, MachineCore, ServiceState, TransitionError, Violation,
    ViolationKind,
};
