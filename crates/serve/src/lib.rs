//! corun-serve: a long-running co-scheduling service daemon.
//!
//! This crate turns the batch pipeline into a *service*: simulated
//! machines (apu-sim [`Session`](apu_sim::Session)s) run continuously on
//! worker threads, an [`OnlinePolicy`](corun_core::OnlinePolicy) decides
//! placement and DVFS levels under the power cap, and clients feed jobs
//! in over a newline-delimited JSON TCP protocol.
//!
//! Layers, bottom up:
//!
//! - [`json`] — a dependency-free JSON value type (parse + render).
//! - [`service`] — the daemon core: admission control with a bounded
//!   queue, incremental model growth, per-machine worker threads, live
//!   metrics. Fully testable in-process.
//! - [`protocol`] — request/response mapping; [`protocol::handle_request`]
//!   is the single entry point, usable without a socket.
//! - [`server`] — the blocking TCP accept loop (thread per connection).
//! - [`client`] — a small blocking client for the CLI and smoke tests.
//!
//! See `docs/SERVICE.md` for the wire-format catalogue and error codes.

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::Client;
pub use json::Json;
pub use protocol::{handle_request, PROTOCOL_VERSION};
pub use server::Server;
pub use service::{JobState, JobStatus, MetricsSnapshot, Service, ServiceConfig, SubmitError};
