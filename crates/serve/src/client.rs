//! A small blocking client for the service protocol.
//!
//! Used by the `corun submit` / `corun status` / `corun shutdown` CLI
//! subcommands and by the CI smoke test. One request per call; responses
//! are returned as parsed [`Json`] values, with protocol-level errors
//! (`"ok": false`) surfaced as `Err(String)` carrying the server message.

use crate::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Send one request object and read one response line.
    ///
    /// Returns the raw response (even when `"ok"` is false) so callers can
    /// inspect structured error payloads like `retry_after_s`.
    pub fn call(&mut self, request: &Json) -> Result<Json, String> {
        let line = request.render();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Json::parse(response.trim()).map_err(|e| format!("bad response: {e}")),
            Err(e) => Err(format!("receive failed: {e}")),
        }
    }

    /// Like [`Client::call`], but turns `"ok": false` into `Err` with the
    /// server's message.
    pub fn call_ok(&mut self, request: &Json) -> Result<Json, String> {
        let response = self.call(request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            let code = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            let msg = response
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("no message");
            Err(format!("{code}: {msg}"))
        }
    }

    /// Health check; true if the server answers the ping.
    pub fn ping(&mut self) -> Result<bool, String> {
        let r = self.call(&crate::json::obj(vec![("op", Json::Str("ping".into()))]))?;
        Ok(r.get("ok").and_then(Json::as_bool) == Some(true))
    }

    /// Submit a spec fragment; returns the assigned job ids.
    pub fn submit(&mut self, spec: &str) -> Result<Vec<usize>, String> {
        let r = self.call_ok(&crate::json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("spec", Json::Str(spec.into())),
        ]))?;
        let ids = r
            .get("ids")
            .and_then(Json::as_arr)
            .ok_or("response missing `ids`")?;
        ids.iter()
            .map(|v| v.as_index().ok_or_else(|| "non-integer job id".into()))
            .collect()
    }

    /// Query one job's status.
    pub fn status(&mut self, id: usize) -> Result<Json, String> {
        self.call_ok(&crate::json::obj(vec![
            ("op", Json::Str("status".into())),
            ("id", Json::Num(id as f64)),
        ]))
    }

    /// Fetch the live metrics snapshot.
    pub fn metrics(&mut self) -> Result<Json, String> {
        self.call_ok(&crate::json::obj(vec![("op", Json::Str("metrics".into()))]))
    }

    /// Request a graceful shutdown (drain queue, then exit).
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call_ok(&crate::json::obj(vec![(
            "op",
            Json::Str("shutdown".into()),
        )]))
        .map(|_| ())
    }

    /// Poll `status` until the job reaches a terminal state or `timeout_s`
    /// wall-clock seconds elapse. Returns the final status object.
    pub fn wait_done(&mut self, id: usize, timeout_s: f64) -> Result<Json, String> {
        let deadline = Instant::now() + Duration::from_secs_f64(timeout_s);
        loop {
            let status = self.status(id)?;
            match status.get("state").and_then(Json::as_str) {
                Some("done") | Some("rejected") => return Ok(status),
                _ => {}
            }
            if Instant::now() >= deadline {
                return Err(format!("job {id} did not finish within {timeout_s}s"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
