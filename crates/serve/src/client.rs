//! A small blocking client for the service protocol.
//!
//! Used by the `corun submit` / `corun status` / `corun shutdown` CLI
//! subcommands and by the CI smoke test. One request per call; responses
//! are returned as parsed [`Json`] values, with protocol-level errors
//! (`"ok": false`) surfaced as `Err(String)` carrying the server message.

use crate::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client-side retry behaviour for `queue_full` backpressure: capped
/// exponential back-off with deterministic jitter, honoring the server's
/// `retry_after_s` hint as a floor.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Total submit attempts (first try included). 1 = no retries.
    pub max_attempts: u32,
    /// Back-off base, seconds; attempt `k` waits about `base * 2^k`.
    pub base_s: f64,
    /// Upper bound on any single wait, seconds.
    pub max_s: f64,
    /// Jitter seed, so concurrent clients desynchronize deterministically.
    pub seed: u64,
    /// Upper bound on *total* wall-clock spent retrying, seconds. A
    /// wedged server that keeps answering `queue_full` can otherwise hold
    /// a caller for `max_attempts * max_s` — far too long for a fleet
    /// coordinator mid-placement-round. Once the budget is spent the next
    /// `queue_full` returns as an error (and a pending back-off sleep is
    /// truncated to the budget's remainder).
    pub max_total_s: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 8,
            base_s: 0.05,
            max_s: 2.0,
            seed: 0x5eed,
            max_total_s: 10.0,
        }
    }
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        // The protocol is strict request/response with tiny lines; Nagle
        // + delayed ACK turns every call into a ~40 ms stall without
        // this (a fleet coordinator makes thousands of calls per drain).
        stream
            .set_nodelay(true)
            .map_err(|e| format!("cannot set TCP_NODELAY: {e}"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Send one request object and read one response line.
    ///
    /// Returns the raw response (even when `"ok"` is false) so callers can
    /// inspect structured error payloads like `retry_after_s`.
    pub fn call(&mut self, request: &Json) -> Result<Json, String> {
        let line = request.render();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Json::parse(response.trim()).map_err(|e| format!("bad response: {e}")),
            Err(e) => Err(format!("receive failed: {e}")),
        }
    }

    /// Like [`Client::call`], but turns `"ok": false` into `Err` with the
    /// server's message.
    pub fn call_ok(&mut self, request: &Json) -> Result<Json, String> {
        let response = self.call(request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            let code = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            let msg = response
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("no message");
            Err(format!("{code}: {msg}"))
        }
    }

    /// Health check; true if the server answers the ping.
    pub fn ping(&mut self) -> Result<bool, String> {
        let r = self.call(&crate::json::obj(vec![("op", Json::Str("ping".into()))]))?;
        Ok(r.get("ok").and_then(Json::as_bool) == Some(true))
    }

    /// Submit a spec fragment; returns the assigned job ids.
    pub fn submit(&mut self, spec: &str) -> Result<Vec<usize>, String> {
        let r = self.call_ok(&crate::json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("spec", Json::Str(spec.into())),
        ]))?;
        let ids = r
            .get("ids")
            .and_then(Json::as_arr)
            .ok_or("response missing `ids`")?;
        ids.iter()
            .map(|v| v.as_index().ok_or_else(|| "non-integer job id".into()))
            .collect()
    }

    /// Like [`Client::submit`], but retries `queue_full` rejections with
    /// capped exponential back-off and jitter, never waiting less than
    /// the server's `retry_after_s` hint. Any other failure returns
    /// immediately. Gives up when either the attempt budget
    /// (`max_attempts`) or the wall-clock budget (`max_total_s`) runs
    /// out, whichever comes first.
    pub fn submit_with_retry(
        &mut self,
        spec: &str,
        retry: &RetryConfig,
    ) -> Result<Vec<usize>, String> {
        // corun-lint: allow(wall-clock) — client-side retry deadline, an I/O edge.
        let deadline = Instant::now() + Duration::from_secs_f64(retry.max_total_s.max(0.0));
        // One jitter stream per submission, drawn once per back-off:
        // equal seeds replay the exact retry schedule under `corun
        // replay`, while different seeds desynchronize concurrent
        // clients hammering the same full queue.
        let mut jitter_rng = corun_core::DetRng::new(retry.seed);
        let mut attempt = 0u32;
        loop {
            let r = self.call(&crate::json::obj(vec![
                ("op", Json::Str("submit".into())),
                ("spec", Json::Str(spec.into())),
            ]))?;
            if r.get("ok").and_then(Json::as_bool) == Some(true) {
                let ids = r
                    .get("ids")
                    .and_then(Json::as_arr)
                    .ok_or("response missing `ids`")?;
                return ids
                    .iter()
                    .map(|v| v.as_index().ok_or_else(|| "non-integer job id".into()))
                    .collect();
            }
            let code = r
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string();
            attempt += 1;
            // corun-lint: allow(wall-clock) — client-side retry pacing, an I/O edge.
            let now = Instant::now();
            if code != "queue_full" || attempt >= retry.max_attempts.max(1) || now >= deadline {
                let msg = r
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("no message");
                let spent = if code == "queue_full" && now >= deadline {
                    format!(" (retry budget of {:.1}s exhausted)", retry.max_total_s)
                } else {
                    String::new()
                };
                return Err(format!("{code}: {msg}{spent}"));
            }
            let hint = r
                .get("retry_after_s")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
                .max(0.0);
            let exp = retry.base_s.max(0.0) * (1u64 << attempt.min(20)) as f64;
            let jitter = 1.0 + 0.5 * jitter_rng.next_unit();
            let delay = (hint.max(exp) * jitter).min(retry.max_s.max(0.0));
            // Never sleep past the wall-clock budget: truncate the last
            // back-off so the final attempt happens at the deadline, not
            // a full back-off beyond it.
            let delay = delay.min((deadline - now).as_secs_f64());
            std::thread::sleep(Duration::from_secs_f64(delay));
        }
    }

    /// Query one job's status.
    pub fn status(&mut self, id: usize) -> Result<Json, String> {
        self.call_ok(&crate::json::obj(vec![
            ("op", Json::Str("status".into())),
            ("id", Json::Num(id as f64)),
        ]))
    }

    /// Push a new power cap to the running service (fleet budget
    /// rebalancing).
    pub fn set_cap(&mut self, cap_w: f64) -> Result<(), String> {
        self.call_ok(&crate::json::obj(vec![
            ("op", Json::Str("set_cap".into())),
            ("cap_w", Json::Num(cap_w)),
        ]))
        .map(|_| ())
    }

    /// Fetch the live metrics snapshot.
    pub fn metrics(&mut self) -> Result<Json, String> {
        self.call_ok(&crate::json::obj(vec![("op", Json::Str("metrics".into()))]))
    }

    /// Stream metrics-ring points recorded after cursor `since` (`0`
    /// starts from the oldest retained point). The response carries
    /// `points` plus `next`, the cursor to resume from.
    pub fn watch(&mut self, since: u64) -> Result<Json, String> {
        self.call_ok(&crate::json::obj(vec![
            ("op", Json::Str("watch".into())),
            ("since", Json::Num(since as f64)),
        ]))
    }

    /// Fetch the accumulated `SRV0xx` fault/journal diagnostics.
    pub fn diagnostics(&mut self) -> Result<Json, String> {
        self.call_ok(&crate::json::obj(vec![(
            "op",
            Json::Str("diagnostics".into()),
        )]))
    }

    /// Request a graceful shutdown (drain queue, then exit).
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call_ok(&crate::json::obj(vec![(
            "op",
            Json::Str("shutdown".into()),
        )]))
        .map(|_| ())
    }

    /// Poll `status` until the job reaches a terminal state or `timeout_s`
    /// wall-clock seconds elapse. Returns the final status object.
    pub fn wait_done(&mut self, id: usize, timeout_s: f64) -> Result<Json, String> {
        // corun-lint: allow(wall-clock) — client-side poll deadline, an I/O edge.
        let deadline = Instant::now() + Duration::from_secs_f64(timeout_s);
        loop {
            let status = self.status(id)?;
            if let Some("done" | "rejected" | "dead-letter") =
                status.get("state").and_then(Json::as_str)
            {
                return Ok(status);
            }
            // corun-lint: allow(wall-clock) — client-side poll deadline, an I/O edge.
            if Instant::now() >= deadline {
                return Err(format!("job {id} did not finish within {timeout_s}s"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
