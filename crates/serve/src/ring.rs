//! Fixed-size time-series metrics ring: the live-ops history behind the
//! `watch` protocol op and `corun status --watch`.
//!
//! The service pushes one [`MetricsPoint`] per harvest slice (and at a
//! few other interesting moments: admission bursts, cap changes,
//! evictions). The ring keeps the last [`RING_CAPACITY`] points in a
//! fixed allocation — dashboards, soak tests, and the CI smoke all read
//! the *same* consistent history through a cursor ([`MetricsRing::since`])
//! instead of scraping logs, and a slow reader can never make the daemon
//! buffer unboundedly: it just misses the oldest points.

/// Points the ring retains; older points are overwritten.
pub const RING_CAPACITY: usize = 1024;

/// One time-series sample of the service's live state.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsPoint {
    /// Monotonic sequence number (1-based, never reused); the `watch`
    /// cursor.
    pub seq: u64,
    /// Wall seconds since service start (the I/O-edge [`corun_core::Clock`]).
    pub wall_s: f64,
    /// Max simulated seconds across machines.
    pub sim_s: f64,
    /// Jobs waiting for dispatch.
    pub queue_depth: usize,
    /// Power headroom vs the cap, watts: `cap_w` minus the last observed
    /// total power sample (equals `cap_w` before the first sample).
    pub headroom_w: f64,
    /// Cumulative completed jobs.
    pub completed: usize,
    /// Cumulative dead-lettered jobs (dead-letter *rate* is a consumer
    /// derivative: delta over delta-time).
    pub dead_lettered: usize,
    /// Per-machine utilization in `[0, 1]`: busy simulated seconds over
    /// elapsed simulated seconds (0 until the machine first advances).
    pub util: Vec<f64>,
}

/// The fixed-size ring buffer. Not internally synchronized — the service
/// holds its state lock while pushing and reading.
#[derive(Debug)]
pub struct MetricsRing {
    points: Vec<MetricsPoint>,
    capacity: usize,
    next_seq: u64,
    head: usize,
}

impl MetricsRing {
    /// An empty ring retaining [`RING_CAPACITY`] points.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(RING_CAPACITY)
    }

    /// An empty ring retaining `capacity` points (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        MetricsRing {
            points: Vec::with_capacity(capacity),
            capacity,
            next_seq: 1,
            head: 0,
        }
    }

    /// Append a point, assigning it the next sequence number (returned).
    /// Overwrites the oldest point once full.
    pub fn push(&mut self, mut point: MetricsPoint) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        point.seq = seq;
        if self.points.len() < self.capacity {
            self.points.push(point);
        } else {
            self.points[self.head] = point;
            self.head = (self.head + 1) % self.capacity;
        }
        seq
    }

    /// Points newer than `cursor`, oldest first, plus the next cursor to
    /// poll with (pass `0` for "everything retained"). A reader that
    /// fell more than [`RING_CAPACITY`] points behind simply misses the
    /// overwritten ones.
    #[must_use]
    pub fn since(&self, cursor: u64) -> (Vec<MetricsPoint>, u64) {
        let mut out: Vec<MetricsPoint> = self
            .points
            .iter()
            .filter(|p| p.seq > cursor)
            .cloned()
            .collect();
        out.sort_by_key(|p| p.seq);
        (out, self.next_seq - 1)
    }

    /// Points currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been pushed yet (or everything aged out —
    /// impossible, the ring only overwrites).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The newest sequence number handed out (0 if none yet).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }
}

impl Default for MetricsRing {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(sim_s: f64) -> MetricsPoint {
        MetricsPoint {
            seq: 0,
            wall_s: sim_s * 2.0,
            sim_s,
            queue_depth: 3,
            headroom_w: 1.5,
            completed: 7,
            dead_lettered: 1,
            util: vec![0.5, 0.25],
        }
    }

    #[test]
    fn cursor_reads_are_ordered_and_resumable() {
        let mut ring = MetricsRing::with_capacity(8);
        for k in 0..5 {
            assert_eq!(ring.push(point(k as f64)), k + 1);
        }
        let (all, next) = ring.since(0);
        assert_eq!(all.len(), 5);
        assert_eq!(next, 5);
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        let (newer, next2) = ring.since(3);
        assert_eq!(newer.iter().map(|p| p.seq).collect::<Vec<_>>(), [4, 5]);
        assert_eq!(next2, 5);
        let (none, _) = ring.since(next2);
        assert!(none.is_empty());
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut ring = MetricsRing::with_capacity(4);
        for k in 0..10 {
            ring.push(point(k as f64));
        }
        assert_eq!(ring.len(), 4);
        let (pts, next) = ring.since(0);
        assert_eq!(pts.iter().map(|p| p.seq).collect::<Vec<_>>(), [7, 8, 9, 10]);
        assert_eq!(next, 10);
        assert_eq!(ring.last_seq(), 10);
        // A reader that fell behind silently misses the overwritten ones.
        let (pts, _) = ring.since(5);
        assert_eq!(pts.first().map(|p| p.seq), Some(7));
    }
}
