//! The resident scheduling service: admission control, online dispatch,
//! and live metrics over one or more simulated machines.
//!
//! This is the in-process core that both the TCP server
//! ([`crate::server`]) and the benchmarks drive. Jobs arrive as workload
//! spec fragments ([`corun_verify`] spec syntax), pass the lint gate, are
//! profiled into a growing [`runtime::IncrementalModel`], and enter a
//! bounded admission queue. One worker thread per simulated machine runs a
//! resumable [`apu_sim::Session`] driven by [`corun_core::OnlinePolicy`]
//! through a dispatcher that pulls from the shared queue; completions,
//! utilization, and power-cap violations feed the metrics snapshot.
//!
//! Concurrency model: all mutable state lives in one `Mutex<Inner>`.
//! Workers hold the lock only inside dispatcher polls and end-of-slice
//! harvests — the simulation ticks themselves run lock-free. `work_cv`
//! wakes starved workers when jobs are admitted or shutdown begins;
//! `done_cv` wakes clients waiting on completions.
//!
//! State-machine discipline: every job/queue/counter mutation goes
//! through the pure transition functions of
//! [`ServiceState`](crate::state::ServiceState) — this module only
//! decides *when* to call them (engine polls, harvests, wall-clock
//! back-off gates) and owns the side effects (journal fsyncs,
//! condition-variable wakeups, simulation accounting). The `corun-mc`
//! model checker exhaustively explores the same transition functions at
//! small scope, so its proofs are about the code running here. See
//! `docs/MODELCHECK.md`.
//!
//! Fault tolerance (see `docs/FAULTS.md`): an optional
//! [`FaultPlan`](apu_sim::FaultPlan) injects deterministic machine
//! crashes, job failures, stragglers, and power-meter disturbances into
//! the workers' sessions. A crashed machine's in-flight jobs are evicted
//! and re-queued with bounded, jittered exponential back-off
//! ([`corun_core::RetryPolicy`]); jobs that exhaust the budget surface as
//! [`JobState::DeadLetter`]. Every fault maps to a stable `SRV0xx`
//! diagnostic in the [`Service::chaos_report`]. An optional append-only
//! [`crate::journal`] makes the whole state machine crash-safe: a daemon
//! killed at any byte resumes via `recover` with no lost and no
//! double-dispatched jobs.

use crate::journal::{repair_tail, replay, scan_journal, Journal, Record, Recovered};
use crate::ring::{MetricsPoint, MetricsRing};
use crate::snapshot::encode_state;
use crate::state::{FailReport, ServiceState};
use apu_sim::{
    BiasedGovernor, Device, Dispatch, DispatchCtx, DispatchJob, Dispatcher, FaultKind, FaultPlan,
    Governor, JobSpec, MachineConfig, NullGovernor, RunOptions, Session, SessionState,
};
use corun_core::{best_solo_run, Clock, CoRunModel, HcsConfig, JobId, OnlinePolicy, RetryPolicy};
use corun_verify::{Code, Diagnostic, Report, Severity, SpecLine};
use perf_model::{CharacterizeConfig, ProfileMethod, StagedPredictor};
use runtime::IncrementalModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

pub use crate::state::JobState;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The simulated machine preset every worker hosts.
    pub machine: MachineConfig,
    /// Package power cap, watts, enforced by the online policy's level
    /// choices and tracked against the simulated power trace.
    pub cap_w: f64,
    /// Number of simulated machines.
    pub machines: usize,
    /// Worker threads stepping the simulated machines. Each thread owns
    /// `machines / worker_threads` resident sessions and always advances
    /// the one whose simulated clock is furthest behind — the event
    /// engine's batched multi-session stepping, which lets one daemon
    /// host hundreds of machines cheaply. `0` (the default) keeps the
    /// historical one-thread-per-machine layout.
    pub worker_threads: usize,
    /// Admission queue bound: jobs admitted but not yet dispatched. A
    /// submission that would push past this gets an explicit
    /// [`SubmitError::QueueFull`] (all-or-nothing for batches).
    pub queue_capacity: usize,
    /// How arriving jobs are profiled on admission.
    pub profile_method: ProfileMethod,
    /// Machine characterization run (or loaded) at startup.
    pub characterization: CharacterizeConfig,
    /// Run the per-job LLC-vulnerability probe on admission.
    pub llc_probe: bool,
    /// If set, the startup characterization goes through
    /// [`runtime::characterize_cached`] keyed under this directory.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Simulated seconds each worker advances per slice before it
    /// publishes progress and re-checks for shutdown.
    pub slice_s: f64,
    /// Deterministic fault plan injected into every worker's session
    /// (`None` = no faults). Parsed from `@chaos` spec directives.
    pub fault_plan: Option<FaultPlan>,
    /// Append-only journal path; every admission, dispatch, completion,
    /// requeue, dead-letter, and eviction is durably logged there.
    pub journal_path: Option<std::path::PathBuf>,
    /// Replay an existing journal at `journal_path` on startup instead of
    /// truncating it: done work stays done, in-flight work is re-queued.
    pub recover: bool,
    /// Retry budget and back-off shape for failed or evicted jobs.
    pub retry: RetryPolicy,
    /// The time source for everything outside the simulation: retry
    /// back-off gates and metrics timestamps. The default
    /// [`corun_core::WallClock`] reads real time at this one I/O edge;
    /// replay and tests inject a [`corun_core::ManualClock`] so decision
    /// paths never touch the wall clock (lint `SRV011`).
    pub clock: Arc<dyn Clock>,
    /// Journal a `Snapshot` checkpoint (full encoded [`ServiceState`] +
    /// fingerprint) roughly every this many records, bounding how much of
    /// the journal `corun replay` must re-execute. `0` disables periodic
    /// snapshots; the terminal snapshot at shutdown is always written.
    pub snapshot_every: usize,
}

impl ServiceConfig {
    /// Fast setup for tests and local serving: coarse characterization,
    /// analytic profiles, one machine, paper cap.
    pub fn fast(machine: &MachineConfig) -> Self {
        let mut characterization = CharacterizeConfig::fast(machine);
        characterization.grid_points = 4;
        characterization.micro_duration_s = 1.5;
        ServiceConfig {
            machine: machine.clone(),
            cap_w: 15.0,
            machines: 1,
            worker_threads: 0,
            queue_capacity: 64,
            profile_method: ProfileMethod::Analytic,
            characterization,
            llc_probe: false,
            cache_dir: None,
            slice_s: 5.0,
            fault_plan: None,
            journal_path: None,
            recover: false,
            retry: RetryPolicy::default(),
            clock: Arc::new(corun_core::WallClock::new()),
            snapshot_every: 256,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone)]
pub enum SubmitError {
    /// The spec fragment failed the lint gate; the report carries the
    /// diagnostics.
    Lint(corun_verify::Report),
    /// The admission queue is full. Nothing from this submission was
    /// admitted; retry after the hinted delay.
    QueueFull {
        /// Suggested client back-off, seconds.
        retry_after_s: f64,
        /// The configured bound.
        capacity: usize,
        /// Jobs currently queued.
        queued: usize,
    },
    /// No frequency level of some job fits the power cap even solo, so it
    /// could never be dispatched. Nothing from this submission was queued.
    Infeasible {
        /// Names of the infeasible jobs.
        names: Vec<String>,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Lint(report) => {
                write!(f, "spec failed lint: {} diagnostic(s)", report.len())
            }
            SubmitError::QueueFull {
                capacity, queued, ..
            } => write!(f, "admission queue full ({queued}/{capacity})"),
            SubmitError::Infeasible { names } => {
                write!(f, "no cap-feasible level for: {}", names.join(", "))
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

/// Status of one job, as returned by [`Service::job_status`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: JobId,
    /// Program name.
    pub name: String,
    /// Current state.
    pub state: JobState,
    /// Times this job was handed to an engine. Exactly 1 for every job
    /// that reaches `Running`/`Done` without faults; each retry after an
    /// injected failure or eviction adds one.
    pub dispatches: u32,
    /// Retry attempts consumed so far.
    pub retries: u32,
}

/// A point-in-time view of the service, cheap to take.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Jobs admitted but not yet dispatched.
    pub queue_depth: usize,
    /// The admission bound.
    pub queue_capacity: usize,
    /// Total jobs ever admitted.
    pub submitted: usize,
    /// Submissions refused with backpressure (jobs, not requests).
    pub rejected: usize,
    /// Jobs handed to a simulated machine.
    pub dispatched: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Worker (simulated machine) count.
    pub machines: usize,
    /// Workers still alive.
    pub workers_alive: usize,
    /// Per-machine simulated clock, seconds.
    pub sim_now_s: Vec<f64>,
    /// Per-machine per-device busy-time fraction of the simulated clock.
    pub util: Vec<[f64; 2]>,
    /// Max over machines/devices of accumulated *predicted* busy seconds —
    /// the model's view of the makespan so far.
    pub predicted_makespan_s: f64,
    /// Max over machines of the last completion's simulated end time —
    /// the ground-truth makespan so far.
    pub simulated_makespan_s: f64,
    /// The power cap, watts.
    pub cap_w: f64,
    /// Power-trace samples observed above the cap.
    pub cap_violations: usize,
    /// Total power-trace samples observed.
    pub cap_samples: usize,
    /// First worker error, if a simulation failed.
    pub worker_error: Option<String>,
    /// Executions lost to faults and put back in the queue.
    pub requeued: usize,
    /// Jobs that exhausted their retry budget.
    pub dead_lettered: usize,
    /// Machines lost to injected crashes.
    pub evictions: usize,
    /// Per-machine crash flag (`true` = this machine is down).
    pub machines_down: Vec<bool>,
    /// Simulated seconds of execution destroyed by faults (partial runs
    /// that must be redone); feeds `BoundReport::with_lost_work`.
    pub lost_work_s: f64,
    /// Oversized protocol frames rejected by the TCP front-end.
    pub frames_rejected: usize,
}

struct Inner {
    model: IncrementalModel,
    policy: OnlinePolicy,
    /// The live power cap, watts. Seeded from `ServiceConfig::cap_w` but
    /// mutable at runtime ([`Service::set_cap_w`]) so a fleet coordinator
    /// can rebalance a cluster budget across running shards.
    cap_w: f64,
    /// The pure service state machine: job table, queue, machine slots,
    /// counters. Every mutation goes through its transition functions —
    /// the same functions `corun-mc` model-checks.
    st: ServiceState,
    /// Per-job retry gates, parallel to `st.jobs`: a requeued job is not
    /// dispatchable before this clock reading (seconds on `clock`).
    /// Driver-side because the pure state speaks logical back-off
    /// seconds, not clock time. Ignored during shutdown so the drain
    /// completes.
    gates: Vec<Option<f64>>,
    /// The injected time source; every clock read in this module goes
    /// through it (never `Instant::now` — lint `SRV011`), so a
    /// `ManualClock` makes the whole driver deterministic.
    clock: Arc<dyn Clock>,
    /// Jobs refused with queue-full backpressure. They never reach the
    /// pure state (nothing was admitted), so the driver counts them.
    refused: usize,
    workers_alive: usize,
    sim_now_s: Vec<f64>,
    busy_s: Vec<[f64; 2]>,
    predicted_busy_s: Vec<[f64; 2]>,
    last_end_s: Vec<f64>,
    cap_violations: usize,
    cap_samples: usize,
    worker_error: Option<String>,
    journal: Option<Journal>,
    /// Runtime fault diagnostics (`SRV0xx`), capped so a pathological
    /// plan cannot grow memory without bound.
    chaos: Report,
    lost_work_s: f64,
    frames_rejected: usize,
    /// The live-ops time-series ring behind `watch` / `corun status
    /// --watch`.
    ring: MetricsRing,
    /// Last observed total-power sample, watts, for the headroom series.
    last_power_w: f64,
    /// Journal a snapshot roughly every this many records (0 = only the
    /// terminal one).
    snapshot_every: usize,
    /// `Journal::seq` right after the last snapshot append, so
    /// `maybe_snapshot` is idempotent at quiescent points.
    last_snapshot_seq: u64,
    /// Fencing epoch of this incarnation: 1 for a fresh journal, bumped
    /// by every journal recovery (1 + the count of `Recovered` records).
    /// Echoed in every protocol response so a fleet coordinator can
    /// detect that it reconnected to a different incarnation.
    epoch: u64,
    /// Boot nonce distinguishing incarnations that share an epoch (a
    /// daemon restarted *without* `--recover` starts at epoch 1 again).
    /// Pure identity — never journaled, never a decision input.
    boot: u64,
    /// Keyed-submission index: fleet submit key -> the job id it already
    /// admitted, so retried RPCs are idempotent. Rebuilt from job names
    /// on recovery (keys double as job names in `Record::Accept`).
    names: HashMap<String, JobId>,
}

struct Shared {
    cfg: ServiceConfig,
    state: Mutex<Inner>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// The running service. Dropping it shuts down gracefully (drains the
/// queue, joins the workers).
pub struct Service {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Characterize (or load the cached characterization of) the machine
    /// and start the worker threads. Returns once the service accepts
    /// submissions.
    pub fn start(cfg: ServiceConfig) -> Service {
        assert!(cfg.machines >= 1, "need at least one machine");
        assert!(cfg.queue_capacity >= 1, "queue capacity must be positive");
        let stages = match &cfg.cache_dir {
            Some(dir) => runtime::characterize_cached(&cfg.machine, &cfg.characterization, dir).0,
            None => perf_model::characterize(&cfg.machine, &cfg.characterization),
        };
        let predictor = StagedPredictor::new(&cfg.machine, stages);
        let model = IncrementalModel::new(
            cfg.machine.clone(),
            predictor,
            cfg.profile_method,
            cfg.llc_probe,
        );
        let mut policy = OnlinePolicy::empty(HcsConfig::with_cap(cfg.cap_w));
        policy.set_retry_policy(cfg.retry);
        let machines = cfg.machines;
        let mut inner = Inner {
            model,
            policy,
            cap_w: cfg.cap_w,
            st: ServiceState::new(machines),
            gates: Vec::new(),
            clock: Arc::clone(&cfg.clock),
            refused: 0,
            workers_alive: machines,
            sim_now_s: vec![0.0; machines],
            busy_s: vec![[0.0; 2]; machines],
            predicted_busy_s: vec![[0.0; 2]; machines],
            last_end_s: vec![0.0; machines],
            cap_violations: 0,
            cap_samples: 0,
            worker_error: None,
            journal: None,
            chaos: Report::new(),
            lost_work_s: 0.0,
            frames_rejected: 0,
            ring: MetricsRing::new(),
            last_power_w: 0.0,
            snapshot_every: cfg.snapshot_every,
            last_snapshot_seq: 0,
            epoch: 1,
            boot: boot_nonce(),
            names: HashMap::new(),
        };
        open_journal(&cfg, &mut inner);
        let shared = Arc::new(Shared {
            state: Mutex::new(inner),
            cfg,
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let threads = match shared.cfg.worker_threads {
            0 => machines,
            n => n.min(machines),
        };
        let workers = (0..threads)
            .map(|t| {
                let shared = Arc::clone(&shared);
                // Round-robin machine assignment; every group is
                // non-empty because threads <= machines.
                let ids: Vec<usize> = (t..machines).step_by(threads).collect();
                let name = if threads == machines {
                    format!("corun-machine-{t}")
                } else {
                    format!("corun-workers-{t}")
                };
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(shared, ids))
                    .expect("spawn worker")
            })
            .collect();
        Service {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// The live power cap, watts (may differ from `config().cap_w` after
    /// a [`Service::set_cap_w`]).
    pub fn cap_w(&self) -> f64 {
        self.lock().cap_w
    }

    /// Re-cap the running service. The dispatcher, the admission
    /// feasibility check and cap-violation accounting all switch to the
    /// new cap immediately; jobs already running finish at their old
    /// settings (the sim applies frequency settings at dispatch). Used by
    /// the fleet coordinator to push rebalanced shard budgets.
    ///
    /// # Panics
    ///
    /// Panics if `cap_w` is non-positive or non-finite.
    pub fn set_cap_w(&self, cap_w: f64) {
        assert!(
            cap_w.is_finite() && cap_w > 0.0,
            "cap must be finite and positive, got {cap_w}"
        );
        let mut inner = self.lock();
        if (inner.cap_w - cap_w).abs() < f64::EPSILON {
            return;
        }
        inner.cap_w = cap_w;
        let (model, policy) = inner.model_and_policy();
        policy.set_cap_w(model, cap_w);
        // The cap feeds the dispatcher's feasibility decisions, so replay
        // must see it at the same point in the event order.
        inner.journal_append(&Record::CapChange { cap_w });
        inner.push_metrics_point();
        inner.maybe_snapshot(false);
        // A raised cap can make previously-declined queue entries
        // dispatchable: wake any parked workers to re-poll.
        self.shared.work_cv.notify_all();
    }

    /// Submit a workload spec fragment (one or more `name [xSCALE]
    /// [*COUNT]` lines). The fragment is linted, its jobs profiled and
    /// admitted atomically: either every expanded job is queued and their
    /// ids returned, or nothing is.
    pub fn submit_spec(&self, text: &str) -> Result<Vec<JobId>, SubmitError> {
        let (lines, report) = corun_verify::lint_spec_full(text);
        if report.has_errors() {
            return Err(SubmitError::Lint(report));
        }
        let jobs = corun_verify::build_jobs(&self.shared.cfg.machine, &lines)
            .map_err(|_| SubmitError::Lint(report))?;
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        // Pair each expanded job with the (program, scale) it came from,
        // in build_jobs expansion order, for the journal.
        let mut origin = Vec::with_capacity(jobs.len());
        for line in &lines {
            for _ in 0..line.count {
                origin.push((line.name.clone(), line.scale));
            }
        }
        debug_assert_eq!(origin.len(), jobs.len());
        self.admit(jobs, origin, None)
    }

    /// Idempotent keyed submit: a single-job spec fragment tagged with a
    /// caller-chosen key (a fleet coordinator's job identity). The first
    /// call admits the job under that key as its name; any repeat —
    /// including an RPC retry after a lost reply, or a retry against a
    /// journal-recovered incarnation — returns the already-admitted id
    /// instead of dispatching a second copy.
    pub fn submit_spec_keyed(&self, text: &str, key: &str) -> Result<Vec<JobId>, SubmitError> {
        let (lines, report) = corun_verify::lint_spec_full(text);
        if report.has_errors() {
            return Err(SubmitError::Lint(report));
        }
        let mut jobs = corun_verify::build_jobs(&self.shared.cfg.machine, &lines)
            .map_err(|_| SubmitError::Lint(report))?;
        if jobs.len() != 1 {
            let mut report = Report::new();
            report.push(Diagnostic::new(
                Code::Srv001,
                "keyed submit",
                format!(
                    "a keyed submission must expand to exactly one job, got {}",
                    jobs.len()
                ),
            ));
            return Err(SubmitError::Lint(report));
        }
        let mut job = jobs.pop().expect("length checked above");
        job.name = key.to_string();
        let origin = vec![(lines[0].name.clone(), lines[0].scale)];
        self.admit(vec![job], origin, Some(key))
    }

    fn admit(
        &self,
        jobs: Vec<JobSpec>,
        origin: Vec<(String, f64)>,
        dedup_key: Option<&str>,
    ) -> Result<Vec<JobId>, SubmitError> {
        let mut inner = self.lock();
        // Keyed dedup must win over every other refusal: a retried RPC
        // whose first attempt landed must get the same answer back even
        // if the queue has since filled or shutdown began.
        if let Some(key) = dedup_key {
            if let Some(&id) = inner.names.get(key) {
                return Ok(vec![id]);
            }
        }
        if inner.st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let queued = inner.st.queue.len();
        let capacity = self.shared.cfg.queue_capacity;
        if queued + jobs.len() > capacity {
            inner.refused += jobs.len();
            return Err(SubmitError::QueueFull {
                // The sim drains in wall-clock bursts, so a short,
                // depth-scaled hint beats pretending to know drain speed.
                retry_after_s: 0.05 * (queued + 1) as f64,
                capacity,
                queued,
            });
        }
        // Profile into the model first so feasibility is checked against
        // the exact ladders the dispatcher will use. The whole batch is
        // admitted under one lock hold, so the intermediate states are
        // never observable.
        let cap = inner.cap_w;
        let mut ids = Vec::with_capacity(jobs.len());
        let mut infeasible = Vec::new();
        for (job, (program, scale)) in jobs.iter().zip(&origin) {
            let id = inner.model.push_job(job);
            let (model, policy) = inner.model_and_policy();
            policy.admit_job(model, id);
            let (state_id, rec) = inner
                .st
                .accept(&job.name, program, *scale)
                .expect("admission checked open above");
            debug_assert_eq!(state_id, id, "model and state ids must align");
            inner.gates.push(None);
            inner.journal_append(&rec);
            if Device::ALL
                .iter()
                .all(|&d| best_solo_run(&inner.model, id, d, cap).is_none())
            {
                infeasible.push(job.name.clone());
            }
            ids.push(id);
        }
        if !infeasible.is_empty() {
            // The model is append-only, so the profiled entries stay, but
            // none of this submission reaches the queue.
            for &id in &ids {
                let rec = inner.st.reject(id).expect("accepted just above");
                inner.journal_append(&rec);
            }
            return Err(SubmitError::Infeasible { names: infeasible });
        }
        if let Some(key) = dedup_key {
            debug_assert_eq!(ids.len(), 1, "keyed submissions are single-job");
            inner.names.insert(key.to_string(), ids[0]);
        }
        inner.push_metrics_point();
        inner.maybe_snapshot(false);
        self.shared.work_cv.notify_all();
        Ok(ids)
    }

    /// Status of one job, `None` for unknown ids.
    pub fn job_status(&self, id: JobId) -> Option<JobStatus> {
        let inner = self.lock();
        inner.st.jobs.get(id).map(|j| JobStatus {
            id,
            name: j.name.clone(),
            state: j.state.clone(),
            dispatches: j.dispatches,
            retries: j.retries,
        })
    }

    /// Number of jobs the service has ever seen (valid ids are `0..len`).
    pub fn job_count(&self) -> usize {
        self.lock().st.jobs.len()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let util = (0..self.shared.cfg.machines)
            .map(|m| {
                let now = inner.sim_now_s[m].max(1e-12);
                [inner.busy_s[m][0] / now, inner.busy_s[m][1] / now]
            })
            .collect();
        let predicted = inner
            .predicted_busy_s
            .iter()
            .flat_map(|d| d.iter().copied())
            .fold(0.0, f64::max);
        let simulated = inner.last_end_s.iter().copied().fold(0.0, f64::max);
        let c = inner.st.counters;
        MetricsSnapshot {
            queue_depth: inner.st.queue.len(),
            queue_capacity: self.shared.cfg.queue_capacity,
            submitted: c.accepted - c.rejected,
            rejected: c.rejected + inner.refused,
            dispatched: c.dispatched,
            completed: c.completed,
            machines: self.shared.cfg.machines,
            workers_alive: inner.workers_alive,
            sim_now_s: inner.sim_now_s.clone(),
            util,
            predicted_makespan_s: predicted,
            simulated_makespan_s: simulated,
            cap_w: inner.cap_w,
            cap_violations: inner.cap_violations,
            cap_samples: inner.cap_samples,
            worker_error: inner.worker_error.clone(),
            requeued: c.requeued,
            dead_lettered: c.dead_lettered,
            evictions: c.evictions,
            machines_down: inner.st.machines.iter().map(|m| m.down).collect(),
            lost_work_s: inner.lost_work_s,
            frames_rejected: inner.frames_rejected,
        }
    }

    /// The accumulated `SRV0xx` fault diagnostics: crashes, retries,
    /// dead-letters, meter disturbances, journal problems.
    pub fn chaos_report(&self) -> Report {
        self.lock().chaos.clone()
    }

    /// Record one oversized protocol frame (called by the TCP front-end;
    /// see `server::MAX_FRAME_BYTES`).
    pub fn note_oversized_frame(&self) {
        let mut inner = self.lock();
        inner.frames_rejected += 1;
        inner.chaos_push(
            Diagnostic::new(
                Code::Srv008,
                "tcp",
                "oversized request frame rejected before parsing",
            )
            .with_help("requests are line-JSON and must stay under server::MAX_FRAME_BYTES"),
        );
    }

    /// Block until `id` reaches a terminal state (done, rejected, or
    /// dead-lettered) or the workers die. Returns the final status,
    /// `None` for unknown ids.
    pub fn wait_job(&self, id: JobId) -> Option<JobStatus> {
        let mut inner = self.lock();
        loop {
            let job = inner.st.jobs.get(id)?;
            if matches!(
                job.state,
                JobState::Done { .. } | JobState::Rejected | JobState::DeadLetter { .. }
            ) || inner.workers_alive == 0
            {
                let status = JobStatus {
                    id,
                    name: job.name.clone(),
                    state: job.state.clone(),
                    dispatches: job.dispatches,
                    retries: job.retries,
                };
                return Some(status);
            }
            inner = self.shared.done_cv.wait(inner).expect("service lock");
        }
    }

    /// Block until the queue is empty and nothing is running (or the
    /// workers die).
    pub fn wait_idle(&self) {
        let mut inner = self.lock();
        loop {
            let active = inner.st.queue.len()
                + inner
                    .st
                    .jobs
                    .iter()
                    .filter(|j| matches!(j.state, JobState::Running { .. }))
                    .count();
            if active == 0 || inner.workers_alive == 0 {
                return;
            }
            inner = self.shared.done_cv.wait(inner).expect("service lock");
        }
    }

    /// Stop accepting submissions. Queued work still drains; call
    /// [`Service::shutdown`] to also wait for the workers.
    pub fn begin_shutdown(&self) {
        let mut inner = self.lock();
        if !inner.st.shutdown {
            inner.st.begin_shutdown();
            inner.journal_append(&Record::ShutdownBegin);
        }
        self.shared.work_cv.notify_all();
    }

    /// Whether [`Service::begin_shutdown`] was called.
    pub fn is_shutting_down(&self) -> bool {
        self.lock().st.shutdown
    }

    /// Block until someone requests shutdown (or the workers die).
    pub fn wait_shutdown(&self) {
        let mut inner = self.lock();
        while !inner.st.shutdown && inner.workers_alive > 0 {
            inner = self.shared.work_cv.wait(inner).expect("service lock");
        }
    }

    /// Graceful shutdown: refuse new submissions, drain the queue, join
    /// the workers. Idempotent.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for h in handles {
            let _ = h.join();
        }
        // The workers are gone, so the state is final: write the terminal
        // snapshot `corun replay` diffs against. Idempotent — a second
        // shutdown (e.g. Drop after an explicit call) appends nothing.
        let mut inner = self.lock();
        inner.push_metrics_point();
        inner.maybe_snapshot(true);
    }

    /// The FNV-1a fingerprint of the current pure state — the identity
    /// `corun replay` reproduces bit-for-bit from the journal.
    pub fn state_fingerprint(&self) -> u64 {
        self.lock().st.fingerprint()
    }

    /// Metrics-ring points newer than `cursor` plus the next cursor to
    /// poll with (the `watch` protocol op; pass `0` for everything
    /// retained).
    pub fn watch(&self, cursor: u64) -> (Vec<MetricsPoint>, u64) {
        self.lock().ring.since(cursor)
    }

    /// This incarnation's fencing epoch: 1 fresh, +1 per journal
    /// recovery. Echoed in every protocol response.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// This incarnation's boot nonce (see [`Service::epoch`]): tells two
    /// incarnations apart even when their epochs collide.
    pub fn boot(&self) -> u64 {
        self.lock().boot
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.shared.state.lock().expect("service lock")
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A per-incarnation identity nonce: process id mixed through the
/// splitmix64 finalizer with a process-local counter. Not entropy (two
/// services in one test process still differ via the counter) and not
/// time (the deterministic-decision-path lint `SRV011` stays clean) —
/// pure identity, never journaled, never a decision input. Masked to
/// 53 bits so it round-trips exactly through JSON numbers.
fn boot_nonce() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let raw = (u64::from(std::process::id()) << 32) ^ SEQ.fetch_add(1, Ordering::Relaxed);
    corun_core::DetRng::new(raw).next_u64() >> 11
}

/// Set up the journal on `inner` per the config: recover-and-append when
/// asked and possible, create-fresh otherwise. Any recovery problem is
/// reported (SRV007/SRV009) and recovery abandoned wholesale — a partial
/// replay could mis-align job ids, which is worse than starting clean.
fn open_journal(cfg: &ServiceConfig, inner: &mut Inner) {
    let Some(path) = &cfg.journal_path else {
        return;
    };
    if cfg.recover && path.exists() {
        let scan = scan_journal(path);
        let mut report = scan.report.clone();
        let (recovered, replay_report) = replay(&scan.records);
        report.merge(replay_report);
        // Rebuild every JobSpec *before* touching the model so a failure
        // cannot leave it half-populated.
        let mut specs: Vec<JobSpec> = Vec::with_capacity(recovered.jobs.len());
        let mut ok = !report.has_errors();
        if ok {
            for (id, rj) in recovered.jobs.iter().enumerate() {
                let line = SpecLine {
                    name: rj.program.clone(),
                    scale: rj.scale,
                    count: 1,
                    line: 0,
                };
                match corun_verify::build_jobs(&cfg.machine, std::slice::from_ref(&line)) {
                    Ok(mut js) if js.len() == 1 => {
                        let mut spec = js.pop().expect("one job");
                        spec.name = rj.name.clone();
                        specs.push(spec);
                    }
                    _ => {
                        report.push(Diagnostic::new(
                            Code::Srv009,
                            format!("job {id}"),
                            format!(
                                "cannot rebuild `{}` from the journal; recovery abandoned",
                                rj.program
                            ),
                        ));
                        ok = false;
                        break;
                    }
                }
            }
        }
        // Repair the tail before reopening for append: truncate a torn
        // fragment (and restore a missing final newline) so the next
        // record lands on a record boundary instead of concatenating
        // onto garbage — which would corrupt the journal for the *next*
        // recovery.
        if ok {
            if let Err(e) = repair_tail(path, &scan) {
                inner.chaos_push(
                    Diagnostic::new(
                        Code::Srv007,
                        path.display().to_string(),
                        format!("cannot repair journal tail: {e}; recovery abandoned"),
                    )
                    .with_severity(Severity::Error),
                );
                ok = false;
            }
        }
        for d in report.diagnostics {
            inner.chaos_push(d);
        }
        if ok {
            restore(inner, &recovered, specs, cfg.machines);
            // The fencing epoch counts incarnations of this journal: 1
            // fresh, +1 per recovery (this one included).
            let past_recoveries = scan
                .records
                .iter()
                .filter(|r| matches!(r, Record::Recovered { .. }))
                .count() as u64;
            inner.epoch = 2 + past_recoveries;
            match Journal::open_append(path, scan.records.len() as u64) {
                Ok(j) => {
                    inner.journal = Some(j);
                    inner.journal_append(&Record::Recovered {
                        jobs: inner.st.jobs.len(),
                        machines: cfg.machines,
                    });
                    // Checkpoint the restored state immediately: replay
                    // of the grown journal can fast-forward to here.
                    inner.maybe_snapshot(true);
                }
                Err(e) => inner.chaos_push(
                    Diagnostic::new(
                        Code::Srv007,
                        path.display().to_string(),
                        format!("cannot reopen journal for appending: {e}"),
                    )
                    .with_severity(Severity::Error),
                ),
            }
            return;
        }
    }
    match Journal::create(path, cfg.machines) {
        Ok(j) => inner.journal = Some(j),
        Err(e) => inner.chaos_push(
            Diagnostic::new(
                Code::Srv007,
                path.display().to_string(),
                format!("cannot create journal: {e}"),
            )
            .with_severity(Severity::Error),
        ),
    }
}

/// Fold a successful replay into the fresh `Inner`: re-admit every job
/// into the model and policy (preserving id alignment), rebuild the pure
/// state via [`ServiceState::restore_from`], and transfer the simulation
/// accounting of completed work.
fn restore(inner: &mut Inner, recovered: &Recovered, specs: Vec<JobSpec>, machines: usize) {
    for (id, spec) in specs.iter().enumerate() {
        let model_id = inner.model.push_job(spec);
        debug_assert_eq!(model_id, id, "recovery must preserve job ids");
        let (model, policy) = inner.model_and_policy();
        policy.admit_job(model, id);
    }
    inner.st = ServiceState::restore_from(recovered, machines);
    inner.gates = vec![None; inner.st.jobs.len()];
    // Keyed submissions use the job name as their idempotency key, so
    // the dedup index survives kill -9 by rebuilding from names. Plain
    // submissions can repeat generated names (`srad@0` per batch) —
    // harmless, those names are never looked up as keys.
    inner.names = inner
        .st
        .jobs
        .iter()
        .enumerate()
        .map(|(id, j)| (j.name.clone(), id))
        .collect();
    for job in &inner.st.jobs {
        // Busy-time and makespan accounting only transfers when the
        // machine still exists in this incarnation.
        if let JobState::Done {
            machine,
            device,
            start_s,
            end_s,
            predicted_s,
        } = job.state
        {
            if machine < machines {
                inner.busy_s[machine][device.index()] += end_s - start_s;
                inner.predicted_busy_s[machine][device.index()] += predicted_s;
                inner.last_end_s[machine] = inner.last_end_s[machine].max(end_s);
            }
        }
    }
}

impl Inner {
    /// Split borrow so the policy can be fed the model while both live in
    /// the same guard.
    fn model_and_policy(&mut self) -> (&IncrementalModel, &mut OnlinePolicy) {
        (&self.model, &mut self.policy)
    }

    /// Durably journal one record; a write failure disables journaling
    /// (running degraded beats dying) and is reported as an SRV007 error.
    fn journal_append(&mut self, record: &Record) {
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        if let Err(e) = journal.append(record) {
            let loc = journal.path().display().to_string();
            self.journal = None;
            self.chaos_push(
                Diagnostic::new(
                    Code::Srv007,
                    loc,
                    format!("journal write failed: {e}; journaling disabled"),
                )
                .with_severity(Severity::Error),
            );
        }
    }

    /// Sample the live state into the metrics ring: queue depth, power
    /// headroom vs the cap, completion/dead-letter counters, per-machine
    /// utilization. Called at harvest boundaries and other interesting
    /// moments (admission, cap changes, evictions) under the lock.
    fn push_metrics_point(&mut self) {
        let sim_s = self.sim_now_s.iter().copied().fold(0.0, f64::max);
        let util = self
            .sim_now_s
            .iter()
            .zip(&self.busy_s)
            .map(|(&now, busy)| {
                if now > 0.0 {
                    (busy[0] + busy[1]) / (2.0 * now)
                } else {
                    0.0
                }
            })
            .collect();
        let point = MetricsPoint {
            seq: 0, // assigned by the ring
            wall_s: self.clock.now_s(),
            sim_s,
            queue_depth: self.st.queue.len(),
            headroom_w: self.cap_w - self.last_power_w,
            completed: self.st.counters.completed,
            dead_lettered: self.st.counters.dead_lettered,
            util,
        };
        self.ring.push(point);
    }

    /// Journal a `Snapshot` checkpoint if one is due: `force` writes
    /// whenever anything was appended since the last snapshot (terminal
    /// and post-recovery checkpoints), otherwise only after
    /// `snapshot_every` records. Callers must hold the lock at a
    /// quiescent point — every state mutation already journaled — so the
    /// snapshot equals replaying its own prefix.
    fn maybe_snapshot(&mut self, force: bool) {
        let Some(journal) = self.journal.as_ref() else {
            return;
        };
        let seq = journal.seq();
        let since = seq.saturating_sub(self.last_snapshot_seq);
        if since == 0 {
            return;
        }
        if !force && (self.snapshot_every == 0 || since < self.snapshot_every as u64) {
            return;
        }
        let record = Record::Snapshot {
            seq,
            fingerprint: self.st.fingerprint(),
            state: encode_state(&self.st),
        };
        self.journal_append(&record);
        if let Some(journal) = self.journal.as_ref() {
            self.last_snapshot_seq = journal.seq();
        }
    }

    /// Append a fault diagnostic, bounded so a hostile plan cannot grow
    /// the report without limit.
    fn chaos_push(&mut self, d: Diagnostic) {
        const MAX_CHAOS_DIAGS: usize = 256;
        if self.chaos.len() < MAX_CHAOS_DIAGS {
            self.chaos.push(d);
        }
    }

    /// Drive the side effects of a failure transition the pure state
    /// already performed: journal its record, retract the lost
    /// execution's predicted busy time, arm the wall-clock back-off
    /// gate, and emit the `SRV003`/`SRV006` diagnostic. Returns `true`
    /// when the job went back to the queue (the caller should wake
    /// workers).
    fn note_fail(&mut self, fail: &FailReport) -> bool {
        debug_assert!(fail.machine < self.predicted_busy_s.len());
        self.predicted_busy_s[fail.machine][fail.device.index()] -= fail.predicted_s;
        self.journal_append(&fail.record.clone());
        match &fail.record {
            Record::Requeue {
                id,
                attempt,
                backoff_s,
                reason,
            } => {
                let until = self.clock.now_s() + *backoff_s;
                self.set_gate(*id, until);
                self.chaos_push(Diagnostic::new(
                    Code::Srv003,
                    format!("job {id}"),
                    format!("{reason}; retry {attempt} after {backoff_s:.3}s back-off"),
                ));
                true
            }
            Record::Dead { id, reason } => {
                self.clear_gate(*id);
                self.chaos_push(Diagnostic::new(
                    Code::Srv006,
                    format!("job {id}"),
                    reason.clone(),
                ));
                false
            }
            other => unreachable!("fail transitions emit Requeue or Dead, not {other:?}"),
        }
    }

    fn set_gate(&mut self, job: JobId, until: f64) {
        if self.gates.len() <= job {
            self.gates.resize(job + 1, None);
        }
        self.gates[job] = Some(until);
    }

    fn clear_gate(&mut self, job: JobId) {
        if let Some(g) = self.gates.get_mut(job) {
            *g = None;
        }
    }
}

/// The per-worker dispatcher: pulls from the shared admission queue via
/// the online policy. Mirrors `runtime::online_exec::OnlineDispatcher`,
/// with the ready set and belief state living behind the service lock.
struct WorkerDispatcher {
    shared: Arc<Shared>,
    machine_idx: usize,
    running: [Option<(JobId, usize)>; 2],
}

impl Dispatcher for WorkerDispatcher {
    fn next(&mut self, device: Device, now_s: f64, ctx: &DispatchCtx) -> Dispatch {
        // Clone the handle so the guard's lifetime is not tied to `self`
        // (dispatch below needs `&mut self` for the belief state).
        let shared = Arc::clone(&self.shared);
        let mut inner = shared.state.lock().expect("service lock");
        // Sync belief: a device polling for work has nothing on it.
        self.running[device.index()] = None;
        if ctx.running.cpu + ctx.running.gpu == 0 {
            self.running = [None, None];
        }
        let co = self.running[device.other().index()];
        // Jobs sitting out a retry back-off are invisible until their
        // gate passes — except during shutdown, where draining promptly
        // beats honoring back-off.
        let wall_now = inner.clock.now_s();
        let ready: Vec<JobId> = inner
            .st
            .queue
            .iter()
            .copied()
            .filter(|&j| {
                inner.st.shutdown
                    || inner
                        .gates
                        .get(j)
                        .copied()
                        .flatten()
                        .is_none_or(|t| t <= wall_now)
            })
            .collect();
        let pick = inner.policy.pick(&inner.model, &ready, device, co);
        match pick {
            Some(p) => self.dispatch(&mut inner, device, now_s, ctx, (p.job, p.level), co),
            None => {
                let anything_running = ctx.running.cpu + ctx.running.gpu > 0;
                if anything_running {
                    // The co-runner must finish first (steal guard, cap);
                    // its completion re-polls us.
                    Dispatch::Idle
                } else if ready.is_empty() {
                    if inner.st.shutdown && inner.st.queue.is_empty() {
                        Dispatch::Drained
                    } else {
                        // Nothing dispatchable right now (empty queue or
                        // every job behind its back-off gate): the session
                        // will report Starved and the worker parks/polls.
                        Dispatch::Idle
                    }
                } else {
                    // Liveness fallback: the machine is fully idle yet the
                    // policy declined every queued job for this device
                    // (steal guard, or no cap-feasible level here). If the
                    // other device can host something, its own poll will
                    // take it; otherwise force the best feasible candidate
                    // here so the queue cannot wedge.
                    let cap = inner.cap_w;
                    let other = device.other();
                    let other_can = ready
                        .iter()
                        .any(|&j| best_solo_run(&inner.model, j, other, cap).is_some());
                    if other_can {
                        return Dispatch::Idle;
                    }
                    let forced = ready
                        .iter()
                        .filter_map(|&j| {
                            best_solo_run(&inner.model, j, device, cap).map(|(l, t)| (j, l, t))
                        })
                        .min_by(|a, b| a.2.total_cmp(&b.2));
                    match forced {
                        Some((job, level, _)) => {
                            self.dispatch(&mut inner, device, now_s, ctx, (job, level), None)
                        }
                        None => Dispatch::Idle,
                    }
                }
            }
        }
    }
}

impl WorkerDispatcher {
    fn dispatch(
        &mut self,
        inner: &mut Inner,
        device: Device,
        now_s: f64,
        ctx: &DispatchCtx,
        (job, level): (JobId, usize),
        co: Option<(JobId, usize)>,
    ) -> Dispatch {
        let predicted_s = match co {
            Some((cj, cl)) => inner.model.corun_time(job, device, level, cj, cl),
            None => inner.model.standalone(job, device, level),
        };
        let spec = inner.model.job(job).clone();
        // The engine only polls a device it has idled, but the previous
        // occupant's completion/failure may still await harvest; clear
        // the slot so the pure transition sees the engine's truth.
        inner.st.vacate(self.machine_idx, device);
        match inner
            .st
            .dispatch(job, self.machine_idx, device, now_s, predicted_s)
        {
            Ok(rec) => {
                inner.clear_gate(job);
                inner.predicted_busy_s[self.machine_idx][device.index()] += predicted_s;
                inner.journal_append(&rec);
                self.running[device.index()] = Some((job, level));
                Dispatch::Run(DispatchJob {
                    job: spec,
                    tag: job,
                    set_freq: Some(ctx.setting.with_level(device, level)),
                })
            }
            Err(e) => {
                // A refused dispatch is a driver bug (the policy picked
                // from the queued set): fail loudly in debug builds,
                // stay live (skip the dispatch) in release.
                debug_assert!(false, "dispatch transition refused: {e}");
                Dispatch::Idle
            }
        }
    }
}

/// One resident simulated machine inside a worker thread: its session,
/// governor, dispatcher view, and harvest cursors.
struct MachineRun<'m> {
    idx: usize,
    session: Session<'m>,
    governor: Box<dyn Governor>,
    dispatcher: WorkerDispatcher,
    harvested_records: usize,
    harvested_samples: usize,
    /// Set when the session last reported `Starved`; cleared whenever a
    /// peer makes progress so the machine re-polls the queue.
    starved: bool,
}

/// A worker thread hosting one or more simulated machines. With the
/// event-driven engine a session's `advance` costs O(wake-ups), so one
/// thread steps many machines: each iteration it pulls the resident
/// session with the *earliest simulated clock* (the machine whose next
/// wake-up is due first) and advances it one slice. Machines retire
/// individually (crash, finish, error) — `workers_alive` counts live
/// machines, not threads.
fn worker_loop(shared: Arc<Shared>, machine_ids: Vec<usize>) {
    // The sessions borrow the machine config, so the worker owns a clone
    // for its whole lifetime.
    let machine = shared.cfg.machine.clone();
    let mut runs: Vec<MachineRun<'_>> = machine_ids
        .into_iter()
        .map(|idx| {
            let mut opts = RunOptions::new(machine.freqs.min_setting());
            opts.limit_s = f64::INFINITY;
            let mut session = Session::new(&machine, opts);
            // When the plan perturbs the meter, the worker runs a
            // reactive governor (instead of the inert NullGovernor) so
            // meter noise and spikes actually exercise the cap-control
            // loop.
            let governor: Box<dyn Governor> = match &shared.cfg.fault_plan {
                Some(plan) if plan.perturbs_meter() => {
                    Box::new(BiasedGovernor::gpu_biased(shared.cfg.cap_w))
                }
                _ => Box::new(NullGovernor),
            };
            if let Some(plan) = &shared.cfg.fault_plan {
                if !plan.is_noop() {
                    session.set_faults(plan.injector(idx));
                }
            }
            let dispatcher = WorkerDispatcher {
                shared: Arc::clone(&shared),
                machine_idx: idx,
                running: [None, None],
            };
            MachineRun {
                idx,
                session,
                governor,
                dispatcher,
                harvested_records: 0,
                harvested_samples: 0,
                starved: false,
            }
        })
        .collect();
    let slice = shared.cfg.slice_s.max(1e-3);

    while !runs.is_empty() {
        let pick = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.starved)
            .min_by(|(_, a), (_, b)| a.session.now_s().total_cmp(&b.session.now_s()))
            .map(|(i, _)| i);
        let Some(pi) = pick else {
            // Every resident machine is starved: park until work arrives,
            // or poll if the queue holds jobs gated behind retry
            // back-offs.
            let mut inner = shared.state.lock().expect("service lock");
            if inner.st.queue.is_empty() {
                while inner.st.queue.is_empty() && !inner.st.shutdown {
                    inner = shared.work_cv.wait(inner).expect("service lock");
                }
            } else {
                let (guard, _) = shared
                    .work_cv
                    .wait_timeout(inner, std::time::Duration::from_millis(10))
                    .expect("service lock");
                inner = guard;
            }
            if inner.st.shutdown && inner.st.queue.is_empty() {
                // Graceful shutdown with nothing left: retire every
                // still-starved machine.
                inner.workers_alive -= runs.len();
                shared.done_cv.notify_all();
                shared.work_cv.notify_all();
                return;
            }
            drop(inner);
            for r in &mut runs {
                r.starved = false;
            }
            continue;
        };

        let r = &mut runs[pi];
        let state = r
            .session
            .advance(&mut r.dispatcher, &mut *r.governor, slice, None);
        let mut inner = shared.state.lock().expect("service lock");
        let records_before = r.harvested_records;
        let requeued_any = harvest(
            &mut inner,
            &mut r.session,
            r.idx,
            &shared.cfg.retry,
            &mut r.harvested_records,
            &mut r.harvested_samples,
        );
        shared.done_cv.notify_all();
        if requeued_any {
            shared.work_cv.notify_all();
        }
        // Did this slice change anything a starved peer could react to?
        // Simulated progress (completions freeing slots or cap headroom)
        // and requeues both count; a no-progress `Starved` poll does not
        // — re-waking peers on those ping-pongs two starved machines
        // forever while a loaded peer with a later clock never gets
        // picked.
        let made_progress = requeued_any
            || r.harvested_records > records_before
            || !matches!(state, Ok(SessionState::Starved));
        let mut retire = false;
        match state {
            Ok(SessionState::Advanced) => {}
            Ok(SessionState::Starved) => {
                r.starved = true;
                if inner.st.shutdown && inner.st.queue.is_empty() {
                    retire = true;
                }
            }
            Ok(SessionState::Crashed) => {
                // An injected machine crash: evict in-flight work into
                // the retry path and retire this machine. Not a worker
                // *error* — the rest of the fleet keeps serving.
                evict_crashed(&mut inner, &r.session, r.idx, &shared.cfg.retry);
                shared.done_cv.notify_all();
                shared.work_cv.notify_all();
                retire = true;
            }
            Ok(SessionState::Finished) => retire = true,
            Err(e) => {
                let msg = format!("machine {}: {e}", r.idx);
                inner.worker_error.get_or_insert(msg);
                retire = true;
            }
        }
        if retire {
            inner.workers_alive -= 1;
            shared.done_cv.notify_all();
            shared.work_cv.notify_all();
            drop(inner);
            runs.remove(pi);
            if made_progress {
                for other in &mut runs {
                    other.starved = false;
                }
            }
        } else {
            drop(inner);
            if made_progress {
                for (i, other) in runs.iter_mut().enumerate() {
                    if i != pi {
                        other.starved = false;
                    }
                }
            }
        }
    }
}

/// Handle an injected machine crash: mark the machine down, journal the
/// eviction, push the in-flight jobs through the retry path, and undo
/// the crashed machine's speculative accounting. The harvest that ran
/// just before already folded every completion and failure, so the pure
/// state's slots are exactly the engine's in-flight set.
fn evict_crashed(
    inner: &mut Inner,
    session: &Session<'_>,
    machine_idx: usize,
    retry: &RetryPolicy,
) {
    let now = session.now_s();
    match inner.st.crash(machine_idx, now, retry, "machine crash") {
        Ok((evict_rec, evicted)) => {
            inner.journal_append(&evict_rec);
            inner.chaos_push(Diagnostic::new(
                Code::Srv002,
                format!("machine {machine_idx}"),
                format!(
                    "injected crash at t={now:.2}s; {} in-flight job(s) evicted",
                    evicted.len()
                ),
            ));
            for fail in &evicted {
                // The lost partial execution must be redone somewhere
                // else: charge it to lost work (note_fail retracts the
                // model's view of this machine's future).
                inner.lost_work_s += (now - fail.start_s).max(0.0);
                inner.note_fail(fail);
            }
            inner.push_metrics_point();
            inner.maybe_snapshot(false);
        }
        Err(e) => {
            debug_assert!(false, "crash transition refused: {e}");
        }
    }
}

/// Fold a finished slice back into the shared state: completions, cap
/// accounting, injected job failures (routed through the retry policy),
/// and non-fatal fault events. Returns whether anything was requeued.
fn harvest(
    inner: &mut Inner,
    session: &mut Session<'_>,
    machine_idx: usize,
    retry: &RetryPolicy,
    harvested_records: &mut usize,
    harvested_samples: &mut usize,
) -> bool {
    inner.sim_now_s[machine_idx] = session.now_s();
    for record in &session.records()[*harvested_records..] {
        match inner.st.complete(record.tag, record.end_s) {
            Ok(rec) => {
                inner.busy_s[machine_idx][record.device.index()] += record.duration_s();
                inner.last_end_s[machine_idx] = inner.last_end_s[machine_idx].max(record.end_s);
                inner.journal_append(&rec);
            }
            Err(e) => {
                debug_assert!(false, "complete transition refused: {e}");
            }
        }
    }
    *harvested_records = session.records().len();
    let samples = &session.trace().samples_w[*harvested_samples..];
    inner.cap_samples += samples.len();
    let cap_w = inner.cap_w;
    inner.cap_violations += samples.iter().filter(|&&w| w > cap_w + 1e-9).count();
    if let Some(&w) = samples.last() {
        inner.last_power_w = w;
    }
    *harvested_samples = session.trace().samples_w.len();

    // Injected job failures: the engine destroyed the execution mid-run
    // (no JobRecord); route the job through the retry path.
    let mut requeued_any = false;
    for failure in session.take_failures() {
        inner.lost_work_s += (failure.at_s - failure.start_s).max(0.0);
        match inner.st.fail(failure.tag, retry, "injected job failure") {
            Ok(fail) => {
                requeued_any |= inner.note_fail(&fail);
            }
            Err(e) => {
                debug_assert!(false, "fail transition refused: {e}");
            }
        }
    }
    // Non-fatal fault events (stragglers, meter disturbances) become
    // warning-severity diagnostics; crashes are reported by the eviction
    // path with the in-flight context the event itself lacks.
    if let Some(injector) = session.faults_mut() {
        for event in injector.drain_events() {
            let diag = match event.kind {
                FaultKind::MachineCrash => continue,
                FaultKind::Straggler { factor } => Diagnostic::new(
                    Code::Srv004,
                    match event.tag {
                        Some(tag) => format!("job {tag}"),
                        None => format!("machine {machine_idx}"),
                    },
                    format!(
                        "injected straggler at t={:.2}s: running {factor:.2}x slower",
                        event.at_s
                    ),
                ),
                FaultKind::MeterSpike { magnitude_w } => Diagnostic::new(
                    Code::Srv005,
                    format!("machine {machine_idx}"),
                    format!(
                        "injected meter spike of {magnitude_w:.1} W at t={:.2}s",
                        event.at_s
                    ),
                ),
                FaultKind::MeterNoise { amplitude_w } => Diagnostic::new(
                    Code::Srv005,
                    format!("machine {machine_idx}"),
                    format!("power meter noise of ±{amplitude_w:.1} W injected"),
                ),
            };
            inner.chaos_push(diag);
        }
    }
    inner.push_metrics_point();
    inner.maybe_snapshot(false);
    requeued_any
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_cfg(queue_capacity: usize) -> ServiceConfig {
        let machine = MachineConfig::ivy_bridge();
        let mut cfg = ServiceConfig::fast(&machine);
        cfg.characterization.grid_points = 3;
        cfg.characterization.micro_duration_s = 1.0;
        cfg.queue_capacity = queue_capacity;
        cfg
    }

    fn tiny_service(queue_capacity: usize) -> Service {
        Service::start(tiny_cfg(queue_capacity))
    }

    fn temp_journal(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "corun-service-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn submit_schedules_and_completes() {
        let svc = tiny_service(16);
        let ids = svc.submit_spec("srad x0.2\nlud x0.1 *2\n").unwrap();
        assert_eq!(ids, vec![0, 1, 2]);
        for &id in &ids {
            let st = svc.wait_job(id).unwrap();
            match st.state {
                JobState::Done {
                    start_s,
                    end_s,
                    predicted_s,
                    ..
                } => {
                    assert!(end_s > start_s);
                    assert!(predicted_s > 0.0);
                }
                other => panic!("job {id} not done: {other:?}"),
            }
        }
        let m = svc.metrics();
        assert_eq!(m.submitted, 3);
        assert_eq!(m.completed, 3);
        assert_eq!(m.dispatched, 3);
        assert_eq!(m.queue_depth, 0);
        assert!(m.simulated_makespan_s > 0.0);
        assert!(m.predicted_makespan_s > 0.0);
        assert!(m.util[0][0] > 0.0 || m.util[0][1] > 0.0);
        assert_eq!(m.requeued, 0);
        assert_eq!(m.dead_lettered, 0);
        assert_eq!(m.evictions, 0);
        assert!(svc.chaos_report().is_empty());
        svc.shutdown();
    }

    #[test]
    fn lint_gate_rejects_bad_specs() {
        let svc = tiny_service(8);
        let err = svc.submit_spec("no_such_program x1\n").unwrap_err();
        match err {
            SubmitError::Lint(report) => assert!(report.has_errors()),
            other => panic!("expected lint error, got {other:?}"),
        }
        let err = svc.submit_spec("srad x-3\n").unwrap_err();
        assert!(matches!(err, SubmitError::Lint(_)));
        assert_eq!(svc.metrics().submitted, 0);
        svc.shutdown();
    }

    #[test]
    fn batch_past_capacity_is_rejected_atomically() {
        let svc = tiny_service(2);
        let err = svc.submit_spec("srad x0.1 *5\n").unwrap_err();
        match err {
            SubmitError::QueueFull {
                retry_after_s,
                capacity,
                ..
            } => {
                assert!(retry_after_s > 0.0);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected backpressure, got {other:?}"),
        }
        let m = svc.metrics();
        assert_eq!(m.submitted, 0);
        assert_eq!(m.rejected, 5);
        // The service still works after rejecting.
        let ids = svc.submit_spec("srad x0.1\n").unwrap();
        let st = svc.wait_job(ids[0]).unwrap();
        assert!(matches!(st.state, JobState::Done { .. }));
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let svc = tiny_service(16);
        let ids = svc.submit_spec("hotspot x0.1 *3\n").unwrap();
        svc.shutdown();
        for &id in &ids {
            let st = svc.job_status(id).unwrap();
            assert!(
                matches!(st.state, JobState::Done { .. }),
                "job {id} not drained: {st:?}"
            );
        }
        assert!(matches!(
            svc.submit_spec("srad x0.1\n"),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn multiple_machines_share_the_queue() {
        let machine = MachineConfig::ivy_bridge();
        let mut cfg = ServiceConfig::fast(&machine);
        cfg.characterization.grid_points = 3;
        cfg.characterization.micro_duration_s = 1.0;
        cfg.machines = 2;
        cfg.queue_capacity = 32;
        let svc = Service::start(cfg);
        let ids = svc.submit_spec("srad x0.1 *4\nlud x0.1 *4\n").unwrap();
        svc.wait_idle();
        let mut used = std::collections::BTreeSet::new();
        for &id in &ids {
            match svc.wait_job(id).unwrap().state {
                JobState::Done { machine, .. } => {
                    used.insert(machine);
                }
                other => panic!("job {id}: {other:?}"),
            }
        }
        let m = svc.metrics();
        assert_eq!(m.completed, 8);
        assert_eq!(m.machines, 2);
        assert!(!used.is_empty());
        svc.shutdown();
    }

    #[test]
    fn batched_worker_threads_step_many_machines() {
        // Four machines on one worker thread: the earliest-wake-up
        // batching must drain the same workload the per-machine layout
        // does, with every machine retiring cleanly at shutdown.
        let machine = MachineConfig::ivy_bridge();
        let mut cfg = ServiceConfig::fast(&machine);
        cfg.characterization.grid_points = 3;
        cfg.characterization.micro_duration_s = 1.0;
        cfg.machines = 4;
        cfg.worker_threads = 1;
        cfg.queue_capacity = 32;
        let svc = Service::start(cfg);
        let ids = svc.submit_spec("srad x0.1 *6\nlud x0.1 *6\n").unwrap();
        svc.wait_idle();
        for &id in &ids {
            let st = svc.wait_job(id).unwrap();
            assert!(
                matches!(st.state, JobState::Done { .. }),
                "job {id}: {st:?}"
            );
        }
        let m = svc.metrics();
        assert_eq!(m.completed, 12);
        assert_eq!(m.machines, 4);
        svc.shutdown();
        assert_eq!(svc.metrics().workers_alive, 0);
    }

    #[test]
    fn crashed_machine_retires_without_stalling_its_thread_peers() {
        // Machine 0 crashes at t=2; its thread also hosts machine 1,
        // which must keep serving and absorb the evicted work.
        let machine = MachineConfig::ivy_bridge();
        let mut cfg = ServiceConfig::fast(&machine);
        cfg.characterization.grid_points = 3;
        cfg.characterization.micro_duration_s = 1.0;
        cfg.machines = 2;
        cfg.worker_threads = 1;
        cfg.queue_capacity = 32;
        cfg.fault_plan = Some(FaultPlan::parse("@chaos seed=5 crash=0:2\n").unwrap());
        let svc = Service::start(cfg);
        let ids = svc.submit_spec("srad x0.1 *4\n").unwrap();
        for &id in &ids {
            let st = svc.wait_job(id).unwrap();
            assert!(
                matches!(st.state, JobState::Done { .. }),
                "job {id}: {st:?}"
            );
        }
        svc.shutdown();
    }

    #[test]
    fn certain_failure_retries_then_dead_letters() {
        let mut cfg = tiny_cfg(16);
        cfg.fault_plan = Some(FaultPlan::parse("@chaos seed=11 job-fail=1\n").unwrap());
        cfg.retry = RetryPolicy {
            max_retries: 2,
            backoff_base_s: 0.01,
            backoff_max_s: 0.05,
        };
        let svc = Service::start(cfg);
        let ids = svc.submit_spec("srad x0.1\n").unwrap();
        let st = svc.wait_job(ids[0]).unwrap();
        match &st.state {
            JobState::DeadLetter { reason } => {
                assert!(reason.contains("3 attempt"), "reason: {reason}");
            }
            other => panic!("expected dead-letter, got {other:?}"),
        }
        assert_eq!(st.dispatches, 3, "initial dispatch + 2 retries");
        let m = svc.metrics();
        assert_eq!(m.dead_lettered, 1);
        assert_eq!(m.requeued, 2);
        assert_eq!(m.completed, 0);
        assert!(m.lost_work_s > 0.0);
        let chaos = svc.chaos_report();
        assert_eq!(chaos.count(Code::Srv003), 2, "{}", chaos.render_human());
        assert_eq!(chaos.count(Code::Srv006), 1, "{}", chaos.render_human());
        svc.shutdown();
    }

    #[test]
    fn crash_evicts_and_the_fleet_recovers() {
        let mut cfg = tiny_cfg(32);
        cfg.machines = 2;
        // Machine 0 dies 2 simulated seconds in; machine 1 is unharmed.
        cfg.fault_plan = Some(FaultPlan::parse("@chaos seed=5 crash=0:2\n").unwrap());
        cfg.retry = RetryPolicy {
            max_retries: 4,
            backoff_base_s: 0.01,
            backoff_max_s: 0.05,
        };
        let svc = Service::start(cfg);
        let ids = svc.submit_spec("srad x0.2 *3\nlud x0.2 *3\n").unwrap();
        for &id in &ids {
            let st = svc.wait_job(id).unwrap();
            assert!(
                matches!(st.state, JobState::Done { .. }),
                "job {id} should finish on the surviving machine: {st:?}"
            );
        }
        let m = svc.metrics();
        assert_eq!(m.completed, 6);
        assert_eq!(m.evictions, 1);
        assert_eq!(m.machines_down, vec![true, false]);
        assert!(m.worker_error.is_none(), "{:?}", m.worker_error);
        let chaos = svc.chaos_report();
        assert_eq!(chaos.count(Code::Srv002), 1, "{}", chaos.render_human());
        svc.shutdown();
    }

    #[test]
    fn journal_survives_restart_and_recovers() {
        let path = temp_journal("restart");
        let mut cfg = tiny_cfg(16);
        cfg.journal_path = Some(path.clone());
        let svc = Service::start(cfg);
        let ids = svc.submit_spec("srad x0.1\nlud x0.1\n").unwrap();
        let mut ends = Vec::new();
        for &id in &ids {
            match svc.wait_job(id).unwrap().state {
                JobState::Done { end_s, .. } => ends.push(end_s),
                other => panic!("job {id}: {other:?}"),
            }
        }
        svc.shutdown();
        drop(svc);

        let mut cfg = tiny_cfg(16);
        cfg.journal_path = Some(path.clone());
        cfg.recover = true;
        let svc = Service::start(cfg);
        assert_eq!(svc.job_count(), 2);
        for (&id, &end_s) in ids.iter().zip(&ends) {
            let st = svc.job_status(id).unwrap();
            match st.state {
                JobState::Done {
                    end_s: recovered, ..
                } => assert_eq!(recovered, end_s, "completion must survive verbatim"),
                other => panic!("job {id} lost its completion: {other:?}"),
            }
            assert_eq!(st.dispatches, 1, "done jobs are never re-dispatched");
        }
        let m = svc.metrics();
        assert_eq!(m.submitted, 2);
        assert_eq!(m.completed, 2);
        assert!(
            !svc.chaos_report().has_errors(),
            "{}",
            svc.chaos_report().render_human()
        );
        // The recovered service still serves.
        let more = svc.submit_spec("hotspot x0.1\n").unwrap();
        assert_eq!(more, vec![2]);
        let st = svc.wait_job(2).unwrap();
        assert!(matches!(st.state, JobState::Done { .. }));
        svc.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_journal_version_starts_fresh_with_srv007() {
        let path = temp_journal("stale");
        std::fs::write(&path, "{\"t\":\"meta\",\"version\":999}\n").unwrap();
        let mut cfg = tiny_cfg(8);
        cfg.journal_path = Some(path.clone());
        cfg.recover = true;
        let svc = Service::start(cfg);
        assert_eq!(svc.job_count(), 0, "stale journal must not be replayed");
        let chaos = svc.chaos_report();
        assert!(chaos.has(Code::Srv007), "{}", chaos.render_human());
        // The service still works (fresh journal).
        let ids = svc.submit_spec("srad x0.1\n").unwrap();
        assert!(matches!(
            svc.wait_job(ids[0]).unwrap().state,
            JobState::Done { .. }
        ));
        svc.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_frames_are_counted_and_reported() {
        let svc = tiny_service(4);
        svc.note_oversized_frame();
        svc.note_oversized_frame();
        assert_eq!(svc.metrics().frames_rejected, 2);
        assert_eq!(svc.chaos_report().count(Code::Srv008), 2);
        svc.shutdown();
    }
}
