//! A minimal JSON value type with a recursive-descent parser and renderer.
//!
//! The build environment has no registry access, and the serde shim is
//! marker-traits only, so the wire format is implemented by hand. The
//! subset is complete for the service protocol: objects, arrays, strings
//! (with escape sequences incl. `\uXXXX`), f64 numbers, booleans, null.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as f64; the protocol never needs u64 range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Render compactly (no whitespace outside strings).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => render_num(*x, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (k, v) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (k, (key, v)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    render_str(key, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_index(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as usize),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Convenience constructor for object literals.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn render_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no Infinity/NaN; the protocol maps them to null.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        // Surrogate pairs are not needed by the protocol;
                        // lone surrogates render as the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run up to the next quote or escape
                // and validate it as UTF-8 once — validating per
                // character would re-scan the remaining input each time,
                // turning large documents (snapshot states) quadratic.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "invalid utf-8 in string".to_owned())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"op":"submit","specs":["kmeans x0.3","lud *2"],"n":3,"deep":{"a":[1,2.5,-3e2],"b":null,"c":true}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("n").and_then(Json::as_index), Some(3));
        assert_eq!(v.get("specs").and_then(Json::as_arr).unwrap().len(), 2);
        let re = Json::parse(&v.render()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let rendered = v.render();
        assert_eq!(rendered, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap(),
            Json::Str("Aé".into())
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Num(-0.5));
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "\"abc",
            "{\"a\":1}x",
            "tru",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse(r#""héllo wörld — ☃""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo wörld — ☃"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
