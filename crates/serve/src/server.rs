//! TCP front-end: a blocking accept loop with one thread per connection.
//!
//! The protocol is line-oriented (see [`crate::protocol`]), so each
//! connection thread is a simple read-line / handle / write-line loop.
//! No async runtime: the std library's blocking sockets are plenty for a
//! control-plane service whose requests are tiny and whose heavy work
//! happens on the simulation worker threads.

use crate::protocol::handle_request;
use crate::service::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Upper bound on one request line. Anything longer is drained and
/// rejected with the stable error code `frame_too_large` *before* JSON
/// parsing, so a hostile or broken client cannot balloon server memory
/// by never sending a newline.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// One framing outcome from [`read_frame`].
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped).
    Line(String),
    /// The line exceeded the byte bound; it was consumed through its
    /// terminating newline (or EOF) and discarded.
    TooLong,
    /// Clean end of stream.
    Eof,
    /// The socket read timed out (`set_read_timeout`). `mid_frame` is
    /// true when bytes of a partial frame were already consumed — a
    /// stalled sender, not an idle keep-alive connection.
    Timeout {
        /// Whether the timeout interrupted a partially-read frame.
        mid_frame: bool,
    },
}

/// Read one newline-terminated frame with a hard byte bound. Unlike
/// `BufRead::read_line`, an oversized line is *drained* (so the
/// connection stays usable) but never buffered beyond `max_bytes`.
/// Public so protocol fuzz tests can drive the exact server codepath.
pub fn read_frame(reader: &mut impl BufRead, max_bytes: usize) -> std::io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            // A read timeout is a frame outcome, not an I/O failure: the
            // caller decides whether an idle pause (between frames) or a
            // stall (mid-frame) ends the connection. The partial frame is
            // dropped either way — mid_frame always closes the socket.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(Frame::Timeout {
                    mid_frame: overflow || !line.is_empty(),
                });
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            // EOF. A dangling unterminated fragment is still a frame.
            return Ok(if overflow {
                Frame::TooLong
            } else if line.is_empty() {
                Frame::Eof
            } else {
                Frame::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow && line.len() + pos > max_bytes {
                    overflow = true;
                }
                if !overflow {
                    line.extend_from_slice(&buf[..pos]);
                }
                reader.consume(pos + 1);
                return Ok(if overflow {
                    Frame::TooLong
                } else {
                    Frame::Line(String::from_utf8_lossy(&line).into_owned())
                });
            }
            None => {
                let n = buf.len();
                if !overflow && line.len() + n > max_bytes {
                    overflow = true;
                    line.clear();
                    line.shrink_to_fit();
                }
                if !overflow {
                    line.extend_from_slice(buf);
                }
                reader.consume(n);
            }
        }
    }
}

/// Live-connection counter; shutdown waits (bounded) for it to drain so
/// in-flight responses — the `shutdown` ack in particular — get flushed
/// before the process exits.
#[derive(Default)]
struct ConnGauge {
    count: Mutex<usize>,
    zero_cv: Condvar,
}

impl ConnGauge {
    fn enter(&self) {
        *self.count.lock().expect("conn gauge") += 1;
    }

    fn leave(&self) {
        let mut n = self.count.lock().expect("conn gauge");
        *n -= 1;
        if *n == 0 {
            self.zero_cv.notify_all();
        }
    }

    /// Wait until no connections remain, or the timeout passes (a client
    /// holding its connection open must not wedge shutdown).
    fn drain(&self, timeout: Duration) {
        // corun-lint: allow(wall-clock) — connection-drain deadline, an I/O edge.
        let deadline = std::time::Instant::now() + timeout;
        let mut n = self.count.lock().expect("conn gauge");
        while *n > 0 {
            // corun-lint: allow(wall-clock) — connection-drain deadline, an I/O edge.
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .zero_cv
                .wait_timeout(n, deadline - now)
                .expect("conn gauge");
            n = guard;
        }
    }
}

/// A running TCP server wrapping a [`Service`].
pub struct Server {
    service: Arc<Service>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnGauge>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start accepting.
    pub fn bind(service: Service, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnGauge::default());
        let accept_handle = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("corun-accept".into())
                .spawn(move || accept_loop(&listener, &service, &stop, &conns))
                .expect("spawn accept thread")
        };
        Ok(Server {
            service,
            addr: local,
            stop,
            conns,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves the actual port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped service (for in-process inspection, e.g. in tests).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// A shared handle to the service, for signal handlers and other
    /// threads that outlive the borrow of `self`.
    pub fn service_handle(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// True once a client has requested shutdown via the protocol.
    pub fn shutdown_requested(&self) -> bool {
        self.service.is_shutting_down()
    }

    /// Block until the service drains after a shutdown request, then stop
    /// accepting and join the accept thread.
    pub fn run_to_shutdown(mut self) {
        self.service.wait_shutdown();
        self.stop_accepting();
        self.service.shutdown();
        self.conns.drain(Duration::from_secs(2));
    }

    /// Stop the accept loop without waiting for the service.
    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it with a throwaway
        // connection so it observes the stop flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
        self.service.begin_shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<ConnGauge>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Tiny request/response lines: without TCP_NODELAY each response
        // can sit behind Nagle waiting on the client's delayed ACK.
        let _ = stream.set_nodelay(true);
        let service = Arc::clone(service);
        let thread_conns = Arc::clone(conns);
        conns.enter();
        if thread::Builder::new()
            .name("corun-conn".into())
            .spawn(move || {
                serve_connection(&service, stream);
                thread_conns.leave();
            })
            .is_err()
        {
            // Spawn failed: the closure never ran, rebalance here. The
            // connection itself is simply dropped (client sees EOF).
            conns.leave();
        }
    }
}

/// Read-timeout cadence on accepted connections. Idle ticks just loop
/// (a quiet keep-alive client stays connected), but each tick rechecks
/// shutdown — so a dead client can no longer pin a connection slot past
/// the shutdown drain — and a sender stalled mid-frame is cut off.
const CONN_TICK: Duration = Duration::from_millis(500);

fn serve_connection(service: &Service, stream: TcpStream) {
    // The timeouts are set on the shared socket, so the read half
    // cloned below inherits them.
    let _ = stream.set_read_timeout(Some(CONN_TICK));
    let _ = stream.set_write_timeout(Some(CONN_TICK));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Ok(Frame::Line(line)) => line,
            Ok(Frame::Timeout { mid_frame }) => {
                if mid_frame || service.is_shutting_down() {
                    break;
                }
                continue;
            }
            Ok(Frame::TooLong) => {
                // The oversized frame was drained; the connection keeps
                // working, the incident is counted and reported (SRV008).
                service.note_oversized_frame();
                let response = crate::protocol::error(
                    "frame_too_large",
                    &format!("request line exceeds {MAX_FRAME_BYTES} bytes"),
                )
                .render();
                if writer
                    .write_all(response.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break;
                }
                continue;
            }
            Ok(Frame::Eof) | Err(_) => break, // client hung up
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = handle_request(service, trimmed);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::service::ServiceConfig;
    use apu_sim::MachineConfig;

    fn tiny_server() -> Server {
        let machine = MachineConfig::ivy_bridge();
        let mut cfg = ServiceConfig::fast(&machine);
        cfg.characterization.grid_points = 3;
        cfg.characterization.micro_duration_s = 1.0;
        Server::bind(Service::start(cfg), "127.0.0.1:0").expect("bind")
    }

    #[test]
    fn tcp_roundtrip_submit_wait_metrics() {
        let server = tiny_server();
        let mut client = Client::connect(&server.addr().to_string()).expect("connect");
        assert!(client.ping().expect("ping"));

        let ids = client.submit("hotspot x0.1\nlud x0.1").expect("submit");
        assert_eq!(ids.len(), 2);
        for &id in &ids {
            let status = client.wait_done(id, 30.0).expect("job should finish");
            assert_eq!(
                status.get("state").and_then(crate::json::Json::as_str),
                Some("done")
            );
        }
        let metrics = client.metrics().expect("metrics");
        assert_eq!(
            metrics
                .get("completed")
                .and_then(crate::json::Json::as_index),
            Some(2)
        );
        client.shutdown().expect("shutdown");
        server.run_to_shutdown();
    }

    #[test]
    fn read_frame_bounds_line_length() {
        use std::io::Cursor;
        // A multi-megabyte line must be rejected without being buffered.
        let mut big = vec![b'x'; 3 * 1024 * 1024];
        big.push(b'\n');
        big.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut reader = Cursor::new(big);
        assert_eq!(
            read_frame(&mut reader, MAX_FRAME_BYTES).unwrap(),
            Frame::TooLong
        );
        // The stream stays in sync: the next frame parses normally.
        assert_eq!(
            read_frame(&mut reader, MAX_FRAME_BYTES).unwrap(),
            Frame::Line("{\"op\":\"ping\"}".into())
        );
        assert_eq!(
            read_frame(&mut reader, MAX_FRAME_BYTES).unwrap(),
            Frame::Eof
        );

        // Exactly at the bound is fine; one byte over is not.
        let at = "y".repeat(16);
        let mut reader = Cursor::new(format!("{at}\n"));
        assert_eq!(read_frame(&mut reader, 16).unwrap(), Frame::Line(at));
        let mut reader = Cursor::new(format!("{}\n", "y".repeat(17)));
        assert_eq!(read_frame(&mut reader, 16).unwrap(), Frame::TooLong);

        // An unterminated oversized tail (no newline before EOF) is also
        // rejected, not returned as a truncated frame.
        let mut reader = Cursor::new("z".repeat(64));
        assert_eq!(read_frame(&mut reader, 16).unwrap(), Frame::TooLong);
    }

    #[test]
    fn oversized_frame_gets_stable_error_and_connection_survives() {
        use crate::json::Json;
        use std::io::{BufRead, BufReader};

        let server = tiny_server();
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);

        // Frame longer than the bound, newline-terminated.
        let mut huge = vec![b'a'; MAX_FRAME_BYTES + 64];
        huge.push(b'\n');
        writer.write_all(&huge).expect("send");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        let r = Json::parse(response.trim()).expect("json");
        assert_eq!(
            r.get("error").and_then(Json::as_str),
            Some("frame_too_large")
        );

        // The same connection still serves normal requests afterwards.
        writer.write_all(b"{\"op\":\"ping\"}\n").expect("send");
        writer.flush().expect("flush");
        response.clear();
        reader.read_line(&mut response).expect("response");
        let r = Json::parse(response.trim()).expect("json");
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));

        assert_eq!(server.service().metrics().frames_rejected, 1);
        server.service().begin_shutdown();
        server.run_to_shutdown();
    }

    #[test]
    fn concurrent_clients_get_consistent_ids() {
        let server = tiny_server();
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                thread::spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    client.submit("srad x0.1").expect("submit")
                })
            })
            .collect();
        let mut all_ids: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        all_ids.sort_unstable();
        all_ids.dedup();
        assert_eq!(all_ids.len(), 4, "ids must be unique across connections");

        let mut client = Client::connect(&addr).expect("connect");
        for id in all_ids {
            client.wait_done(id, 30.0).expect("job should finish");
        }
        client.shutdown().expect("shutdown");
        server.run_to_shutdown();
    }
}
