//! TCP front-end: a blocking accept loop with one thread per connection.
//!
//! The protocol is line-oriented (see [`crate::protocol`]), so each
//! connection thread is a simple read-line / handle / write-line loop.
//! No async runtime: the std library's blocking sockets are plenty for a
//! control-plane service whose requests are tiny and whose heavy work
//! happens on the simulation worker threads.

use crate::protocol::handle_request;
use crate::service::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Live-connection counter; shutdown waits (bounded) for it to drain so
/// in-flight responses — the `shutdown` ack in particular — get flushed
/// before the process exits.
#[derive(Default)]
struct ConnGauge {
    count: Mutex<usize>,
    zero_cv: Condvar,
}

impl ConnGauge {
    fn enter(&self) {
        *self.count.lock().expect("conn gauge") += 1;
    }

    fn leave(&self) {
        let mut n = self.count.lock().expect("conn gauge");
        *n -= 1;
        if *n == 0 {
            self.zero_cv.notify_all();
        }
    }

    /// Wait until no connections remain, or the timeout passes (a client
    /// holding its connection open must not wedge shutdown).
    fn drain(&self, timeout: Duration) {
        let deadline = std::time::Instant::now() + timeout;
        let mut n = self.count.lock().expect("conn gauge");
        while *n > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .zero_cv
                .wait_timeout(n, deadline - now)
                .expect("conn gauge");
            n = guard;
        }
    }
}

/// A running TCP server wrapping a [`Service`].
pub struct Server {
    service: Arc<Service>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnGauge>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start accepting.
    pub fn bind(service: Service, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnGauge::default());
        let accept_handle = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("corun-accept".into())
                .spawn(move || accept_loop(&listener, &service, &stop, &conns))
                .expect("spawn accept thread")
        };
        Ok(Server {
            service,
            addr: local,
            stop,
            conns,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves the actual port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped service (for in-process inspection, e.g. in tests).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// True once a client has requested shutdown via the protocol.
    pub fn shutdown_requested(&self) -> bool {
        self.service.is_shutting_down()
    }

    /// Block until the service drains after a shutdown request, then stop
    /// accepting and join the accept thread.
    pub fn run_to_shutdown(mut self) {
        self.service.wait_shutdown();
        self.stop_accepting();
        self.service.shutdown();
        self.conns.drain(Duration::from_secs(2));
    }

    /// Stop the accept loop without waiting for the service.
    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it with a throwaway
        // connection so it observes the stop flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
        self.service.begin_shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<ConnGauge>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let service = Arc::clone(service);
        let thread_conns = Arc::clone(conns);
        conns.enter();
        if thread::Builder::new()
            .name("corun-conn".into())
            .spawn(move || {
                serve_connection(&service, stream);
                thread_conns.leave();
            })
            .is_err()
        {
            // Spawn failed: the closure never ran, rebalance here. The
            // connection itself is simply dropped (client sees EOF).
            conns.leave();
        }
    }
}

fn serve_connection(service: &Service, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break, // client hung up
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = handle_request(service, trimmed);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::service::ServiceConfig;
    use apu_sim::MachineConfig;

    fn tiny_server() -> Server {
        let machine = MachineConfig::ivy_bridge();
        let mut cfg = ServiceConfig::fast(&machine);
        cfg.characterization.grid_points = 3;
        cfg.characterization.micro_duration_s = 1.0;
        Server::bind(Service::start(cfg), "127.0.0.1:0").expect("bind")
    }

    #[test]
    fn tcp_roundtrip_submit_wait_metrics() {
        let server = tiny_server();
        let mut client = Client::connect(&server.addr().to_string()).expect("connect");
        assert!(client.ping().expect("ping"));

        let ids = client.submit("hotspot x0.1\nlud x0.1").expect("submit");
        assert_eq!(ids.len(), 2);
        for &id in &ids {
            let status = client.wait_done(id, 30.0).expect("job should finish");
            assert_eq!(
                status.get("state").and_then(crate::json::Json::as_str),
                Some("done")
            );
        }
        let metrics = client.metrics().expect("metrics");
        assert_eq!(
            metrics
                .get("completed")
                .and_then(crate::json::Json::as_index),
            Some(2)
        );
        client.shutdown().expect("shutdown");
        server.run_to_shutdown();
    }

    #[test]
    fn concurrent_clients_get_consistent_ids() {
        let server = tiny_server();
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                thread::spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    client.submit("srad x0.1").expect("submit")
                })
            })
            .collect();
        let mut all_ids: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        all_ids.sort_unstable();
        all_ids.dedup();
        assert_eq!(all_ids.len(), 4, "ids must be unique across connections");

        let mut client = Client::connect(&addr).expect("connect");
        for id in all_ids {
            client.wait_done(id, 30.0).expect("job should finish");
        }
        client.shutdown().expect("shutdown");
        server.run_to_shutdown();
    }
}
