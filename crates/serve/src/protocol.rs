//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request object per line, one response object per line. Every
//! response carries `"ok"`; failures add `"error"` (a stable machine
//! code, see [`docs/SERVICE.md`]) and a human `"message"`. The full
//! schema catalogue lives in `docs/SERVICE.md`.
//!
//! [`handle_request`] is the single entry point — the TCP server feeds it
//! raw lines, and tests can drive the whole protocol without a socket.

use crate::json::{obj, Json};
use crate::service::{JobState, JobStatus, MetricsSnapshot, Service, SubmitError};
use apu_sim::Device;

/// Protocol revision, echoed by `ping` and checked by clients.
pub const PROTOCOL_VERSION: u32 = 1;

/// Handle one request line; always returns exactly one JSON line
/// (without the trailing newline).
pub fn handle_request(service: &Service, line: &str) -> String {
    match Json::parse(line) {
        Ok(req) => {
            let mut resp = dispatch(service, &req);
            stamp_identity(service, &req, &mut resp);
            resp.render()
        }
        Err(e) => error("bad_request", &format!("invalid JSON: {e}")).render(),
    }
}

/// Stamp every response with this incarnation's fencing identity
/// (`epoch`, `boot`) and echo the request's `seq` verbatim when present,
/// so a fleet coordinator can fence replies from stale incarnations and
/// reject stale/duplicated replies on a desynchronized connection.
fn stamp_identity(service: &Service, req: &Json, resp: &mut Json) {
    if let Json::Obj(fields) = resp {
        fields.push(("epoch".into(), Json::Num(service.epoch() as f64)));
        fields.push(("boot".into(), Json::Num(service.boot() as f64)));
        if let Some(seq) = req.get("seq").and_then(Json::as_f64) {
            fields.push(("seq".into(), Json::Num(seq)));
        }
    }
}

fn dispatch(service: &Service, req: &Json) -> Json {
    let Some(op) = req.get("op").and_then(Json::as_str) else {
        return error("bad_request", "missing string field `op`");
    };
    match op {
        "ping" => obj(vec![
            ("ok", Json::Bool(true)),
            ("service", Json::Str("corun-serve".into())),
            ("proto", Json::Num(PROTOCOL_VERSION as f64)),
        ]),
        "submit" => {
            let Some(spec) = req.get("spec").and_then(Json::as_str) else {
                return error("bad_request", "submit needs a string field `spec`");
            };
            // An optional `key` makes the submit idempotent: retried
            // RPCs (lost replies, reconnects, recovered incarnations)
            // return the already-admitted id instead of a second copy.
            match req.get("key").and_then(Json::as_str) {
                Some(key) => match service.submit_spec_keyed(spec, key) {
                    Ok(ids) => ids_json(&ids),
                    Err(e) => submit_error_json(&e),
                },
                None => submit_specs(service, &[spec]),
            }
        }
        "batch" => {
            let Some(items) = req.get("specs").and_then(Json::as_arr) else {
                return error("bad_request", "batch needs an array field `specs`");
            };
            let mut specs = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(s) => specs.push(s),
                    None => return error("bad_request", "`specs` entries must be strings"),
                }
            }
            submit_specs(service, &specs)
        }
        "status" => {
            let Some(id) = req.get("id").and_then(Json::as_index) else {
                return error("bad_request", "status needs a numeric field `id`");
            };
            match service.job_status(id) {
                Some(status) => status_json(&status),
                None => error("unknown_job", &format!("no job with id {id}")),
            }
        }
        "metrics" => metrics_json(&service.metrics()),
        "watch" => {
            // Cursor-resumable read of the live-ops metrics ring: returns
            // every retained point newer than `since` (default 0 = all)
            // plus the cursor to poll with next.
            let since = match req.get("since") {
                None => 0,
                Some(v) => match v.as_index() {
                    Some(n) => n as u64,
                    None => return error("bad_request", "`since` must be a non-negative integer"),
                },
            };
            let (points, next) = service.watch(since);
            obj(vec![
                ("ok", Json::Bool(true)),
                ("next", Json::Num(next as f64)),
                ("points", Json::Arr(points.iter().map(point_json).collect())),
            ])
        }
        "diagnostics" => {
            // SRV0xx fault/journal findings; Report::render_json emits a
            // JSON array, embed it verbatim.
            let report = service.chaos_report();
            let diags = Json::parse(&report.render_json())
                .unwrap_or_else(|_| Json::Str(report.render_human()));
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("count".into(), Json::Num(report.len() as f64)),
                ("diagnostics".into(), diags),
            ])
        }
        "set_cap" => {
            let Some(cap_w) = req.get("cap_w").and_then(Json::as_f64) else {
                return error("bad_request", "set_cap needs a numeric field `cap_w`");
            };
            if !cap_w.is_finite() || cap_w <= 0.0 {
                return error("bad_request", "`cap_w` must be finite and positive");
            }
            service.set_cap_w(cap_w);
            obj(vec![("ok", Json::Bool(true)), ("cap_w", Json::Num(cap_w))])
        }
        "shutdown" => {
            service.begin_shutdown();
            obj(vec![("ok", Json::Bool(true))])
        }
        other => error("unknown_op", &format!("unknown op `{other}`")),
    }
}

fn submit_specs(service: &Service, specs: &[&str]) -> Json {
    // A batch is all-or-nothing like a single multi-line spec, so just
    // join the fragments; the lint gate reports per-line locations.
    let text = specs.join("\n");
    match service.submit_spec(&text) {
        Ok(ids) => ids_json(&ids),
        Err(e) => submit_error_json(&e),
    }
}

fn ids_json(ids: &[usize]) -> Json {
    obj(vec![
        ("ok", Json::Bool(true)),
        (
            "ids",
            Json::Arr(ids.iter().map(|&i| Json::Num(i as f64)).collect()),
        ),
    ])
}

fn submit_error_json(e: &SubmitError) -> Json {
    match e {
        SubmitError::Lint(report) => {
            // Report::render_json emits a JSON document; embed it verbatim.
            let diags = Json::parse(&report.render_json())
                .unwrap_or_else(|_| Json::Str(report.render_human()));
            Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("error".into(), Json::Str("lint".into())),
                ("message".into(), Json::Str(e.to_string())),
                ("diagnostics".into(), diags),
            ])
        }
        SubmitError::QueueFull {
            retry_after_s,
            capacity,
            queued,
        } => obj(vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str("queue_full".into())),
            ("message", Json::Str(e.to_string())),
            ("retry_after_s", Json::Num(*retry_after_s)),
            ("capacity", Json::Num(*capacity as f64)),
            ("queued", Json::Num(*queued as f64)),
        ]),
        SubmitError::Infeasible { names } => obj(vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str("infeasible".into())),
            ("message", Json::Str(e.to_string())),
            (
                "jobs",
                Json::Arr(names.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
        ]),
        SubmitError::ShuttingDown => obj(vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str("shutting_down".into())),
            ("message", Json::Str(e.to_string())),
        ]),
    }
}

fn device_str(d: Device) -> &'static str {
    match d {
        Device::Cpu => "cpu",
        Device::Gpu => "gpu",
    }
}

fn status_json(status: &JobStatus) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Num(status.id as f64)),
        ("name", Json::Str(status.name.clone())),
        ("dispatches", Json::Num(status.dispatches as f64)),
        ("retries", Json::Num(status.retries as f64)),
    ];
    match &status.state {
        JobState::Queued => fields.push(("state", Json::Str("queued".into()))),
        JobState::Rejected => fields.push(("state", Json::Str("rejected".into()))),
        JobState::Running {
            machine,
            device,
            start_s,
            predicted_s,
        } => {
            fields.push(("state", Json::Str("running".into())));
            fields.push(("machine", Json::Num(*machine as f64)));
            fields.push(("device", Json::Str(device_str(*device).into())));
            fields.push(("start_s", Json::Num(*start_s)));
            fields.push(("predicted_s", Json::Num(*predicted_s)));
        }
        JobState::Done {
            machine,
            device,
            start_s,
            end_s,
            predicted_s,
        } => {
            fields.push(("state", Json::Str("done".into())));
            fields.push(("machine", Json::Num(*machine as f64)));
            fields.push(("device", Json::Str(device_str(*device).into())));
            fields.push(("start_s", Json::Num(*start_s)));
            fields.push(("end_s", Json::Num(*end_s)));
            fields.push(("predicted_s", Json::Num(*predicted_s)));
            fields.push(("simulated_s", Json::Num(*end_s - *start_s)));
        }
        JobState::DeadLetter { reason } => {
            fields.push(("state", Json::Str("dead-letter".into())));
            fields.push(("reason", Json::Str(reason.clone())));
        }
    }
    obj(fields)
}

fn point_json(p: &crate::ring::MetricsPoint) -> Json {
    obj(vec![
        ("seq", Json::Num(p.seq as f64)),
        ("wall_s", Json::Num(p.wall_s)),
        ("sim_s", Json::Num(p.sim_s)),
        ("queue_depth", Json::Num(p.queue_depth as f64)),
        ("headroom_w", Json::Num(p.headroom_w)),
        ("completed", Json::Num(p.completed as f64)),
        ("dead_lettered", Json::Num(p.dead_lettered as f64)),
        (
            "util",
            Json::Arr(p.util.iter().map(|&u| Json::Num(u)).collect()),
        ),
    ])
}

fn metrics_json(m: &MetricsSnapshot) -> Json {
    obj(vec![
        ("ok", Json::Bool(true)),
        ("queue_depth", Json::Num(m.queue_depth as f64)),
        ("queue_capacity", Json::Num(m.queue_capacity as f64)),
        ("submitted", Json::Num(m.submitted as f64)),
        ("rejected", Json::Num(m.rejected as f64)),
        ("dispatched", Json::Num(m.dispatched as f64)),
        ("completed", Json::Num(m.completed as f64)),
        ("machines", Json::Num(m.machines as f64)),
        ("workers_alive", Json::Num(m.workers_alive as f64)),
        (
            "sim_now_s",
            Json::Arr(m.sim_now_s.iter().map(|&t| Json::Num(t)).collect()),
        ),
        (
            "util",
            Json::Arr(
                m.util
                    .iter()
                    .map(|u| {
                        obj(vec![
                            ("cpu", Json::Num(u[Device::Cpu.index()])),
                            ("gpu", Json::Num(u[Device::Gpu.index()])),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("predicted_makespan_s", Json::Num(m.predicted_makespan_s)),
        ("simulated_makespan_s", Json::Num(m.simulated_makespan_s)),
        ("cap_w", Json::Num(m.cap_w)),
        ("cap_violations", Json::Num(m.cap_violations as f64)),
        ("cap_samples", Json::Num(m.cap_samples as f64)),
        (
            "worker_error",
            match &m.worker_error {
                Some(e) => Json::Str(e.clone()),
                None => Json::Null,
            },
        ),
        ("requeued", Json::Num(m.requeued as f64)),
        ("dead_lettered", Json::Num(m.dead_lettered as f64)),
        ("evictions", Json::Num(m.evictions as f64)),
        (
            "machines_down",
            Json::Arr(m.machines_down.iter().map(|&d| Json::Bool(d)).collect()),
        ),
        ("lost_work_s", Json::Num(m.lost_work_s)),
        ("frames_rejected", Json::Num(m.frames_rejected as f64)),
    ])
}

pub(crate) fn error(code: &str, message: &str) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(code.into())),
        ("message", Json::Str(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use apu_sim::MachineConfig;

    fn service() -> Service {
        let machine = MachineConfig::ivy_bridge();
        let mut cfg = ServiceConfig::fast(&machine);
        cfg.characterization.grid_points = 3;
        cfg.characterization.micro_duration_s = 1.0;
        cfg.queue_capacity = 4;
        Service::start(cfg)
    }

    fn call(svc: &Service, line: &str) -> Json {
        Json::parse(&handle_request(svc, line)).expect("response must be valid JSON")
    }

    #[test]
    fn ping_and_bad_requests() {
        let svc = service();
        let r = call(&svc, r#"{"op":"ping"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("proto").and_then(Json::as_index), Some(1));

        let r = call(&svc, "not json");
        assert_eq!(r.get("error").and_then(Json::as_str), Some("bad_request"));
        let r = call(&svc, r#"{"no_op":1}"#);
        assert_eq!(r.get("error").and_then(Json::as_str), Some("bad_request"));
        let r = call(&svc, r#"{"op":"frobnicate"}"#);
        assert_eq!(r.get("error").and_then(Json::as_str), Some("unknown_op"));
        svc.shutdown();
    }

    #[test]
    fn submit_status_metrics_roundtrip() {
        let svc = service();
        let r = call(&svc, r#"{"op":"submit","spec":"lud x0.1"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let ids = r.get("ids").and_then(Json::as_arr).unwrap();
        assert_eq!(ids.len(), 1);
        let id = ids[0].as_index().unwrap();

        svc.wait_job(id);
        let r = call(&svc, &format!(r#"{{"op":"status","id":{id}}}"#));
        assert_eq!(r.get("state").and_then(Json::as_str), Some("done"));
        assert!(r.get("simulated_s").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(r.get("predicted_s").and_then(Json::as_f64).unwrap() > 0.0);

        let m = call(&svc, r#"{"op":"metrics"}"#);
        assert_eq!(m.get("completed").and_then(Json::as_index), Some(1));
        assert_eq!(m.get("queue_depth").and_then(Json::as_index), Some(0));
        assert!(m.get("util").and_then(Json::as_arr).is_some());

        let r = call(&svc, r#"{"op":"status","id":999}"#);
        assert_eq!(r.get("error").and_then(Json::as_str), Some("unknown_job"));
        svc.shutdown();
    }

    #[test]
    fn lint_and_backpressure_over_the_protocol() {
        let svc = service();
        let r = call(&svc, r#"{"op":"submit","spec":"who_dis x1"}"#);
        assert_eq!(r.get("error").and_then(Json::as_str), Some("lint"));
        assert!(r.get("diagnostics").is_some());

        // Queue capacity is 4; a 6-wide batch must bounce atomically.
        let r = call(
            &svc,
            r#"{"op":"batch","specs":["lud x0.1 *3","srad x0.1 *3"]}"#,
        );
        assert_eq!(r.get("error").and_then(Json::as_str), Some("queue_full"));
        assert!(r.get("retry_after_s").and_then(Json::as_f64).unwrap() > 0.0);
        assert_eq!(r.get("capacity").and_then(Json::as_index), Some(4));

        let m = call(&svc, r#"{"op":"metrics"}"#);
        assert_eq!(m.get("submitted").and_then(Json::as_index), Some(0));
        assert_eq!(m.get("rejected").and_then(Json::as_index), Some(6));
        svc.shutdown();
    }

    #[test]
    fn diagnostics_and_fault_metrics_over_the_protocol() {
        let machine = MachineConfig::ivy_bridge();
        let mut cfg = ServiceConfig::fast(&machine);
        cfg.characterization.grid_points = 3;
        cfg.characterization.micro_duration_s = 1.0;
        cfg.fault_plan = Some(apu_sim::FaultPlan::parse("@chaos seed=3 job-fail=1\n").unwrap());
        cfg.retry = corun_core::RetryPolicy {
            max_retries: 1,
            backoff_base_s: 0.01,
            backoff_max_s: 0.02,
        };
        let svc = Service::start(cfg);
        let r = call(&svc, r#"{"op":"submit","spec":"lud x0.1"}"#);
        let id = r.get("ids").and_then(Json::as_arr).unwrap()[0]
            .as_index()
            .unwrap();
        svc.wait_job(id);
        let r = call(&svc, &format!(r#"{{"op":"status","id":{id}}}"#));
        assert_eq!(r.get("state").and_then(Json::as_str), Some("dead-letter"));
        assert!(r.get("reason").and_then(Json::as_str).is_some());
        assert_eq!(r.get("retries").and_then(Json::as_index), Some(1));

        let m = call(&svc, r#"{"op":"metrics"}"#);
        assert_eq!(m.get("dead_lettered").and_then(Json::as_index), Some(1));
        assert_eq!(m.get("requeued").and_then(Json::as_index), Some(1));
        assert!(m.get("lost_work_s").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(m.get("machines_down").and_then(Json::as_arr).is_some());

        let d = call(&svc, r#"{"op":"diagnostics"}"#);
        assert_eq!(d.get("ok"), Some(&Json::Bool(true)));
        assert!(d.get("count").and_then(Json::as_index).unwrap() >= 2);
        let diags = d.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert!(!diags.is_empty());
        svc.shutdown();
    }

    #[test]
    fn set_cap_over_the_protocol() {
        let svc = service();
        let r = call(&svc, r#"{"op":"set_cap","cap_w":22.5}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let m = call(&svc, r#"{"op":"metrics"}"#);
        assert_eq!(m.get("cap_w").and_then(Json::as_f64), Some(22.5));

        let r = call(&svc, r#"{"op":"set_cap"}"#);
        assert_eq!(r.get("error").and_then(Json::as_str), Some("bad_request"));
        let r = call(&svc, r#"{"op":"set_cap","cap_w":-3}"#);
        assert_eq!(r.get("error").and_then(Json::as_str), Some("bad_request"));
        svc.shutdown();
    }

    #[test]
    fn watch_streams_ring_points_with_a_cursor() {
        let svc = service();
        let r = call(&svc, r#"{"op":"submit","spec":"lud x0.1"}"#);
        let id = r.get("ids").and_then(Json::as_arr).unwrap()[0]
            .as_index()
            .unwrap();
        svc.wait_job(id);

        let w = call(&svc, r#"{"op":"watch"}"#);
        assert_eq!(w.get("ok"), Some(&Json::Bool(true)));
        let points = w.get("points").and_then(Json::as_arr).unwrap();
        assert!(!points.is_empty(), "harvests must have pushed points");
        let next = w.get("next").and_then(Json::as_index).unwrap();
        assert_eq!(
            points.last().unwrap().get("seq").and_then(Json::as_index),
            Some(next)
        );
        let p = &points[0];
        assert!(p.get("queue_depth").and_then(Json::as_index).is_some());
        assert!(p.get("headroom_w").and_then(Json::as_f64).is_some());
        assert!(p.get("util").and_then(Json::as_arr).is_some());

        // Resuming from the returned cursor yields nothing new.
        let w2 = call(&svc, &format!(r#"{{"op":"watch","since":{next}}}"#));
        assert!(w2.get("points").and_then(Json::as_arr).unwrap().is_empty());

        let r = call(&svc, r#"{"op":"watch","since":"x"}"#);
        assert_eq!(r.get("error").and_then(Json::as_str), Some("bad_request"));
        svc.shutdown();
    }

    #[test]
    fn shutdown_over_the_protocol() {
        let svc = service();
        let r = call(&svc, r#"{"op":"shutdown"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let r = call(&svc, r#"{"op":"submit","spec":"lud x0.1"}"#);
        assert_eq!(r.get("error").and_then(Json::as_str), Some("shutting_down"));
        svc.shutdown();
    }
}
