//! # perf-model — co-run performance and power modeling
//!
//! The predictive layer of the reproduction of *"Co-Run Scheduling with
//! Power Cap on Integrated CPU-GPU Systems"* (paper Section V):
//!
//! * [`profile`] — standalone profiles `l_{i,p,f}` with bandwidth demand
//!   and solo power at every frequency level.
//! * [`characterize`] — sweeps the Figure-4 micro-benchmark over the
//!   (CPU demand x GPU demand) grid at a small set of frequency stages to
//!   build the co-run degradation space of Figures 5 and 6.
//! * [`surface`] — the degradation space representation with bilinear
//!   lookup.
//! * [`predictor`] — staged interpolation: predicts `d_{i,p,f}^{j,g}` for
//!   arbitrary program pairs and frequency settings from standalone
//!   profiles alone, plus the standalone-sum power predictor.
//! * [`stats`] — error histograms used to validate the models
//!   (Figures 7 and 8).
//! * [`probe`] — the O(N) LLC-vulnerability probe (extension).
//! * [`persist`] — versioned on-disk caching of profiles/stages/bundles.
//! * [`validate`] — leave-one-out surface cross-validation.
//! * [`sensitivity`] — frequency-sensitivity indices from profiles.

pub mod characterize;
pub mod persist;
pub mod predictor;
pub mod probe;
pub mod profile;
pub mod sensitivity;
pub mod stats;
pub mod surface;
pub mod validate;

pub use characterize::{characterize, characterize_stage, CharacterizeConfig, Stage};
pub use persist::{
    bundle_from_string, bundle_to_string, load_bundle, load_profiles, load_stages,
    profiles_from_string, profiles_to_string, save_bundle, save_profiles, save_stages,
    stages_from_string, stages_to_string, ModelBundle, PersistError, FORMAT_VERSION,
};
pub use predictor::StagedPredictor;
pub use probe::{measure_llc_vulnerability, probe_batch, LlcVulnerability, PROBE_DEMANDS_GBPS};
pub use profile::{
    idle_package_power, profile_batch, profile_job, DeviceProfile, JobProfile, ProfileMethod,
};
pub use sensitivity::{prefers_watts, sensitivity, sensitivity_both, Sensitivity};
pub use stats::{relative_error, ErrorHistogram};
pub use surface::{DegradationSurface, Grid2D};
pub use validate::{leave_one_out, validate_stage, LooReport};
