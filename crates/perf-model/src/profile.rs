//! Standalone profiles: `l_{i,p,f}`, bandwidth demand, and solo power for
//! every job, device, and frequency level.
//!
//! The paper obtains these by offline profiling ("to assess the full
//! capability of the proposed co-scheduling algorithm ... we use offline
//! profiling to record the standalone performance and power usage at each
//! frequency level"); here the profiler runs each job alone on the
//! simulator. An analytic fast path is also provided for tests.

use apu_sim::{run_solo, Device, FreqSetting, JobSpec, MachineConfig, PerDevice};
use serde::{Deserialize, Serialize};

/// Standalone measurements of one job on one device across that device's
/// frequency ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Run time (seconds) indexed by frequency level.
    pub time_s: Vec<f64>,
    /// Average DRAM demand (GB/s) indexed by frequency level.
    pub demand_gbps: Vec<f64>,
    /// Mean package power during the solo run (watts) indexed by level.
    pub power_w: Vec<f64>,
}

impl DeviceProfile {
    fn level_count(&self) -> usize {
        self.time_s.len()
    }
}

/// Full standalone profile of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Job name.
    pub name: String,
    /// Per-device ladders.
    pub per_device: PerDevice<DeviceProfile>,
}

impl JobProfile {
    /// `l_{i,p,f}`: standalone time on `device` at frequency level `f`.
    pub fn time(&self, device: Device, level: usize) -> f64 {
        self.per_device.get(device).time_s[level]
    }

    /// Solo DRAM demand on `device` at level `f`, GB/s.
    pub fn demand(&self, device: Device, level: usize) -> f64 {
        self.per_device.get(device).demand_gbps[level]
    }

    /// Mean solo package power on `device` at level `f`, watts.
    pub fn power(&self, device: Device, level: usize) -> f64 {
        self.per_device.get(device).power_w[level]
    }

    /// The best (minimum) standalone time across both devices at their
    /// maximum frequencies.
    pub fn best_time_unconstrained(&self) -> f64 {
        Device::ALL
            .iter()
            .map(|&d| {
                let p = self.per_device.get(d);
                p.time_s[p.level_count() - 1]
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The device with the lower standalone time at maximum frequency.
    pub fn preferred_device_unconstrained(&self) -> Device {
        let c = &self.per_device.cpu;
        let g = &self.per_device.gpu;
        if c.time_s[c.level_count() - 1] <= g.time_s[g.level_count() - 1] {
            Device::Cpu
        } else {
            Device::Gpu
        }
    }
}

/// How standalone numbers are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileMethod {
    /// Run every (job, device, level) combination on the simulator — the
    /// ground-truth equivalent of the paper's offline profiling runs.
    Measured,
    /// Use the analytic steady-state model (fast; accurate to <1% of the
    /// engine, suitable for tests).
    Analytic,
}

/// Profile one job on both devices at every frequency level.
pub fn profile_job(cfg: &MachineConfig, job: &JobSpec, method: ProfileMethod) -> JobProfile {
    let per_device = PerDevice::from_fn(|device| {
        let table = cfg.freqs.table(device);
        let mut time_s = Vec::with_capacity(table.len());
        let mut demand = Vec::with_capacity(table.len());
        let mut power = Vec::with_capacity(table.len());
        for (level, f_ghz) in table.iter() {
            let setting = match device {
                Device::Cpu => FreqSetting::new(level, 0),
                Device::Gpu => FreqSetting::new(0, level),
            };
            let (t, p) = match method {
                ProfileMethod::Measured => {
                    let out = run_solo(cfg, job, device, setting)
                        .expect("solo profiling run cannot stall");
                    (out.time_s, out.mean_power_w)
                }
                ProfileMethod::Analytic => {
                    let t = job.solo_time(cfg.device(device), device, f_ghz, cfg.f_max(device));
                    (t, analytic_solo_power(cfg, job, device, setting, t))
                }
            };
            time_s.push(t);
            demand.push(if t > 0.0 { job.total_bytes() / t } else { 0.0 });
            power.push(p);
        }
        DeviceProfile {
            time_s,
            demand_gbps: demand,
            power_w: power,
        }
    });
    JobProfile {
        name: job.name.clone(),
        per_device,
    }
}

/// Analytic approximation of mean solo package power (idle co-device).
fn analytic_solo_power(
    cfg: &MachineConfig,
    job: &JobSpec,
    device: Device,
    setting: FreqSetting,
    time_s: f64,
) -> f64 {
    if time_s <= 0.0 {
        return idle_package_power(cfg);
    }
    let dev = cfg.device(device);
    let f = cfg.freqs.ghz(device, setting);
    let f_max = cfg.f_max(device);
    // Time-weighted average compute utilization across phases.
    let mut util_time = 0.0;
    for p in &job.phases {
        let tc = p.compute_time(dev, device, f);
        let t = p.solo_time(dev, device, f, f_max);
        util_time += if t > 0.0 { tc } else { 0.0 };
    }
    let busy_t: f64 = job
        .phases
        .iter()
        .map(|p| p.solo_time(dev, device, f, f_max))
        .sum::<f64>()
        .max(1e-12);
    let busy_frac = (util_time / busy_t).min(1.0);
    let stall = cfg.device(device).stall_power_frac;
    let util = (busy_frac + stall * (1.0 - busy_frac)) * (busy_t / time_s);
    let bw = job.total_bytes() / time_s;
    let act = apu_sim::DeviceActivity {
        compute_util: util,
        mem_bw_gbps: bw,
    };
    let other = apu_sim::DeviceActivity::IDLE;
    let acts = match device {
        Device::Cpu => PerDevice::new(act, other),
        Device::Gpu => PerDevice::new(other, act),
    };
    cfg.power_model().package_power(setting, acts)
}

/// Package power with both devices idle (uncore + idle floors) — the
/// double-counted term removed by the co-run power predictor.
pub fn idle_package_power(cfg: &MachineConfig) -> f64 {
    cfg.package.uncore_w + cfg.cpu.idle_power_w + cfg.gpu.idle_power_w
}

/// Profile a whole batch of jobs.
pub fn profile_batch(
    cfg: &MachineConfig,
    jobs: &[JobSpec],
    method: ProfileMethod,
) -> Vec<JobProfile> {
    jobs.iter().map(|j| profile_job(cfg, j, method)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::by_name;

    fn cfg() -> MachineConfig {
        MachineConfig::ivy_bridge()
    }

    #[test]
    fn analytic_profile_matches_table1_at_max() {
        let cfg = cfg();
        let job = by_name(&cfg, "streamcluster").unwrap();
        let p = profile_job(&cfg, &job, ProfileMethod::Analytic);
        assert!((p.time(Device::Cpu, 15) - 59.71).abs() < 0.5);
        assert!((p.time(Device::Gpu, 9) - 23.72).abs() < 0.5);
        assert_eq!(p.preferred_device_unconstrained(), Device::Gpu);
    }

    #[test]
    fn measured_profile_close_to_analytic() {
        let cfg = cfg();
        let job = by_name(&cfg, "lud").unwrap();
        let a = profile_job(&cfg, &job, ProfileMethod::Analytic);
        let m = profile_job(&cfg, &job, ProfileMethod::Measured);
        for d in Device::ALL {
            let n = cfg.freqs.table(d).len();
            for l in [0, n / 2, n - 1] {
                let ta = a.time(d, l);
                let tm = m.time(d, l);
                assert!(
                    (ta - tm).abs() / ta < 0.03,
                    "{d} L{l}: analytic {ta} vs measured {tm}"
                );
            }
        }
    }

    #[test]
    fn times_monotone_decreasing_in_frequency() {
        let cfg = cfg();
        let job = by_name(&cfg, "hotspot").unwrap();
        let p = profile_job(&cfg, &job, ProfileMethod::Analytic);
        for d in Device::ALL {
            let times = &p.per_device.get(d).time_s;
            for w in times.windows(2) {
                assert!(w[0] >= w[1], "higher frequency must not be slower");
            }
        }
    }

    #[test]
    fn power_monotone_increasing_in_frequency() {
        let cfg = cfg();
        let job = by_name(&cfg, "leukocyte").unwrap();
        let p = profile_job(&cfg, &job, ProfileMethod::Analytic);
        for d in Device::ALL {
            let pw = &p.per_device.get(d).power_w;
            for w in pw.windows(2) {
                assert!(
                    w[0] <= w[1] + 1e-9,
                    "higher frequency must not use less power"
                );
            }
        }
    }

    #[test]
    fn memory_bound_job_insensitive_to_frequency() {
        let cfg = cfg();
        let sc = by_name(&cfg, "streamcluster").unwrap(); // memory-heavy
        let leu = by_name(&cfg, "leukocyte").unwrap(); // compute-heavy
        let psc = profile_job(&cfg, &sc, ProfileMethod::Analytic);
        let ple = profile_job(&cfg, &leu, ProfileMethod::Analytic);
        let sc_ratio = psc.time(Device::Gpu, 0) / psc.time(Device::Gpu, 9);
        let le_ratio = ple.time(Device::Gpu, 0) / ple.time(Device::Gpu, 9);
        assert!(
            le_ratio > sc_ratio + 0.1,
            "compute-bound slows more at low freq: {le_ratio} vs {sc_ratio}"
        );
    }

    #[test]
    fn idle_power_constant() {
        let cfg = cfg();
        assert!((idle_package_power(&cfg) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn batch_profiles_all() {
        let cfg = cfg();
        let jobs = kernels::rodinia_suite(&cfg);
        let ps = profile_batch(&cfg, &jobs, ProfileMethod::Analytic);
        assert_eq!(ps.len(), 8);
        // Table I preference row: 6 GPU, dwt2d CPU, lud near-tied.
        let gpu_pref = ps
            .iter()
            .filter(|p| p.preferred_device_unconstrained() == Device::Gpu)
            .count();
        assert!(gpu_pref >= 6);
        let dwt = ps.iter().find(|p| p.name == "dwt2d").unwrap();
        assert_eq!(dwt.preferred_device_unconstrained(), Device::Cpu);
    }
}
