//! LLC-vulnerability probing — an `O(N)` extension to the paper's
//! bandwidth-only model.
//!
//! The staged-interpolation model sees only DRAM bandwidth, so it is blind
//! to the failure mode of Section III's dwt2d example: a cache-resident
//! program whose working set is evicted by a streaming co-runner degrades
//! far beyond what bandwidth contention predicts. The probe measures, a
//! few times per job per device, the job's co-run degradation against
//! micro-benchmark stressors of increasing intensity and records the
//! *excess* over the surface prediction. Predicting a real pair then adds
//! the excess interpolated at the co-runner's demand (eviction pressure is
//! proxied by bandwidth demand, which standalone profiles already contain).
//!
//! The response is strongly nonlinear — at low pressure the extra misses
//! hide under compute, at high pressure the job turns memory-bound — so a
//! single probe point is not enough; three points (2.25, 4.5, 9 GB/s) with
//! piecewise-linear interpolation capture the knee.
//!
//! Cost: `6N` extra profiling runs — the same order as standalone
//! profiling itself, far below the `O(N^2 K^2)` of exhaustive pair
//! profiling the paper set out to avoid.

use crate::predictor::StagedPredictor;
use crate::profile::JobProfile;
use apu_sim::{run_solo, run_with_background, Device, JobSpec, MachineConfig, PerDevice};
use kernels::MicroKernel;
use serde::{Deserialize, Serialize};

/// Solo demands of the probe stressors, GB/s.
pub const PROBE_DEMANDS_GBPS: [f64; 3] = [2.25, 4.5, 9.0];

/// LLC vulnerability of one job: excess degradation (beyond the bandwidth
/// model) as a function of co-runner demand, per device the job runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlcVulnerability {
    /// Per device: `(probe demand GB/s, excess degradation)` knots, sorted
    /// by demand. Interpolation passes through the origin and clamps past
    /// the last knot.
    pub curve: PerDevice<Vec<(f64, f64)>>,
}

impl LlcVulnerability {
    /// A zero vulnerability (bandwidth model fully explains the job).
    pub fn none() -> Self {
        LlcVulnerability {
            curve: PerDevice::new(
                PROBE_DEMANDS_GBPS.iter().map(|&d| (d, 0.0)).collect(),
                PROBE_DEMANDS_GBPS.iter().map(|&d| (d, 0.0)).collect(),
            ),
        }
    }

    /// Extra degradation to add for a co-runner with solo demand
    /// `co_demand_gbps` when this job runs on `device`.
    pub fn extra_degradation(&self, device: Device, co_demand_gbps: f64) -> f64 {
        let knots = self.curve.get(device);
        if knots.is_empty() || co_demand_gbps <= 0.0 {
            return 0.0;
        }
        // Piecewise linear through (0, 0) and the knots; clamp at the top.
        let mut prev = (0.0, 0.0);
        for &(d, e) in knots {
            if co_demand_gbps <= d {
                let t = (co_demand_gbps - prev.0) / (d - prev.0).max(1e-12);
                return (prev.1 + t * (e - prev.1)).max(0.0);
            }
            prev = (d, e);
        }
        prev.1.max(0.0)
    }

    /// Maximum excess over both devices (a "is this job LLC-fragile" score).
    pub fn max_excess(&self) -> f64 {
        Device::ALL
            .iter()
            .flat_map(|&d| self.curve.get(d).iter().map(|&(_, e)| e))
            .fold(0.0, f64::max)
    }
}

/// Measure one job's LLC vulnerability on both devices at the maximum
/// frequency setting.
pub fn measure_llc_vulnerability(
    cfg: &MachineConfig,
    predictor: &StagedPredictor,
    job: &JobSpec,
    profile: &JobProfile,
) -> LlcVulnerability {
    let setting = cfg.freqs.max_setting();
    let curve = PerDevice::from_fn(|device| {
        let other = device.other();
        let solo = run_solo(cfg, job, device, setting)
            .expect("probe solo")
            .time_s;
        let own_level = cfg.freqs.table(device).max_level();
        let own_demand = profile.demand(device, own_level);
        PROBE_DEMANDS_GBPS
            .iter()
            .map(|&probe_demand| {
                let probe =
                    MicroKernel::for_bandwidth(cfg, other, setting, probe_demand, 4.0).to_job(cfg);
                let co =
                    run_with_background(cfg, job, device, &probe, setting).expect("probe co-run");
                let measured = (co / solo - 1.0).max(0.0);
                let predicted = predictor.degradation_at(
                    device,
                    own_demand,
                    probe_demand,
                    cfg.f_max(Device::Cpu),
                    cfg.f_max(Device::Gpu),
                );
                (probe_demand, (measured - predicted).max(0.0))
            })
            .collect()
    });
    LlcVulnerability { curve }
}

/// Probe a whole batch.
pub fn probe_batch(
    cfg: &MachineConfig,
    predictor: &StagedPredictor,
    jobs: &[JobSpec],
    profiles: &[JobProfile],
) -> Vec<LlcVulnerability> {
    jobs.iter()
        .zip(profiles)
        .map(|(j, p)| measure_llc_vulnerability(cfg, predictor, j, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizeConfig};
    use crate::profile::{profile_job, ProfileMethod};

    fn predictor(cfg: &MachineConfig) -> StagedPredictor {
        let mut ccfg = CharacterizeConfig::fast(cfg);
        ccfg.grid_points = 4;
        ccfg.micro_duration_s = 1.5;
        StagedPredictor::new(cfg, characterize(cfg, &ccfg))
    }

    #[test]
    fn dwt2d_is_vulnerable_streamcluster_is_not() {
        let cfg = MachineConfig::ivy_bridge();
        let p = predictor(&cfg);
        let dwt = kernels::with_input_scale(&kernels::by_name(&cfg, "dwt2d").unwrap(), 0.2);
        let sc = kernels::with_input_scale(&kernels::by_name(&cfg, "streamcluster").unwrap(), 0.2);
        let dwt_prof = profile_job(&cfg, &dwt, ProfileMethod::Analytic);
        let sc_prof = profile_job(&cfg, &sc, ProfileMethod::Analytic);
        let v_dwt = measure_llc_vulnerability(&cfg, &p, &dwt, &dwt_prof);
        let v_sc = measure_llc_vulnerability(&cfg, &p, &sc, &sc_prof);
        assert!(
            v_dwt.max_excess() > 0.5,
            "dwt2d must show large unexplained degradation, got {}",
            v_dwt.max_excess()
        );
        assert!(
            v_sc.max_excess() < 0.25,
            "streamcluster is bandwidth-explained, got {}",
            v_sc.max_excess()
        );
    }

    #[test]
    fn vulnerability_curve_is_nonlinear_for_dwt2d() {
        // The knee matters: the excess at 2.25 GB/s must be far below a
        // linear scale-down of the excess at 9 GB/s.
        let cfg = MachineConfig::ivy_bridge();
        let p = predictor(&cfg);
        let dwt = kernels::with_input_scale(&kernels::by_name(&cfg, "dwt2d").unwrap(), 0.2);
        let prof = profile_job(&cfg, &dwt, ProfileMethod::Analytic);
        let v = measure_llc_vulnerability(&cfg, &p, &dwt, &prof);
        let lo = v.extra_degradation(Device::Cpu, 2.25);
        let hi = v.extra_degradation(Device::Cpu, 9.0);
        assert!(
            lo < hi * 0.25 / (2.25 / 9.0) * 0.8,
            "low-pressure excess {lo} should sit well below linear from {hi}"
        );
    }

    #[test]
    fn extra_degradation_interpolates_and_clamps() {
        let v = LlcVulnerability {
            curve: PerDevice::new(
                vec![(2.25, 0.1), (4.5, 0.5), (9.0, 2.0)],
                vec![(2.25, 0.0), (4.5, 0.0), (9.0, 0.0)],
            ),
        };
        assert!((v.extra_degradation(Device::Cpu, 2.25) - 0.1).abs() < 1e-12);
        assert!((v.extra_degradation(Device::Cpu, 9.0) - 2.0).abs() < 1e-12);
        assert!(
            (v.extra_degradation(Device::Cpu, 20.0) - 2.0).abs() < 1e-12,
            "clamps"
        );
        // midpoint of the second segment
        let mid = v.extra_degradation(Device::Cpu, (2.25 + 4.5) / 2.0);
        assert!((mid - 0.3).abs() < 1e-12);
        // origin
        assert_eq!(v.extra_degradation(Device::Cpu, 0.0), 0.0);
        assert_eq!(v.extra_degradation(Device::Gpu, 9.0), 0.0);
        assert_eq!(
            LlcVulnerability::none().extra_degradation(Device::Cpu, 9.0),
            0.0
        );
    }
}
