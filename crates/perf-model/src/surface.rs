//! The co-run degradation space: a 2-D grid of degradations over
//! (CPU demand, GPU demand), one grid per device per frequency stage,
//! queried by bilinear interpolation (paper Figures 5 and 6).

use apu_sim::{Device, PerDevice};
use serde::{Deserialize, Serialize};

/// A rectangular grid of values over two demand axes with bilinear lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2D {
    /// CPU-demand axis, GB/s, strictly increasing.
    pub cpu_axis: Vec<f64>,
    /// GPU-demand axis, GB/s, strictly increasing.
    pub gpu_axis: Vec<f64>,
    /// Row-major values: `values[i * gpu_axis.len() + j]` at
    /// `(cpu_axis[i], gpu_axis[j])`.
    pub values: Vec<f64>,
}

impl Grid2D {
    /// Build from axes and row-major values.
    ///
    /// # Panics
    /// Panics on dimension mismatch or non-increasing axes.
    pub fn new(cpu_axis: Vec<f64>, gpu_axis: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), cpu_axis.len() * gpu_axis.len());
        assert!(cpu_axis.len() >= 2 && gpu_axis.len() >= 2);
        assert!(cpu_axis.windows(2).all(|w| w[0] < w[1]));
        assert!(gpu_axis.windows(2).all(|w| w[0] < w[1]));
        Grid2D {
            cpu_axis,
            gpu_axis,
            values,
        }
    }

    /// Value at grid node `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.gpu_axis.len() + j]
    }

    /// Bilinear interpolation at `(cpu_demand, gpu_demand)`; queries outside
    /// the axes are clamped to the boundary (demands beyond the measured
    /// peak behave like the peak).
    pub fn interpolate(&self, cpu_demand: f64, gpu_demand: f64) -> f64 {
        let (i0, i1, tx) = bracket(&self.cpu_axis, cpu_demand);
        let (j0, j1, ty) = bracket(&self.gpu_axis, gpu_demand);
        let v00 = self.at(i0, j0);
        let v01 = self.at(i0, j1);
        let v10 = self.at(i1, j0);
        let v11 = self.at(i1, j1);
        let a = v00 + (v01 - v00) * ty;
        let b = v10 + (v11 - v10) * ty;
        a + (b - a) * tx
    }

    /// Maximum grid value.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean grid value.
    pub fn mean_value(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Fraction of grid nodes whose value lies in `[lo, hi)`.
    pub fn frac_in(&self, lo: f64, hi: f64) -> f64 {
        let n = self.values.iter().filter(|&&v| v >= lo && v < hi).count();
        n as f64 / self.values.len() as f64
    }
}

/// Locate `x` within `axis`: returns `(lower index, upper index, weight)`
/// with the query clamped to the axis range.
fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
    let n = axis.len();
    if x <= axis[0] {
        return (0, 0, 0.0);
    }
    if x >= axis[n - 1] {
        return (n - 1, n - 1, 0.0);
    }
    // binary search for the segment
    let mut lo = 0;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if axis[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
    (lo, hi, t)
}

/// The degradation surfaces of one frequency stage: how much a CPU job and a
/// GPU job each slow down as a function of both solo demands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationSurface {
    /// `deg.cpu` is the CPU job's degradation surface (Figure 5); `deg.gpu`
    /// the GPU job's (Figure 6). Values are fractional slowdowns (0.2 = 20%).
    pub deg: PerDevice<Grid2D>,
}

impl DegradationSurface {
    /// Predicted degradation of the job on `device` when its solo demand is
    /// `own_demand` and the co-runner's is `co_demand` (both GB/s).
    pub fn degradation(&self, device: Device, own_demand: f64, co_demand: f64) -> f64 {
        let g = self.deg.get(device);
        let v = match device {
            Device::Cpu => g.interpolate(own_demand, co_demand),
            Device::Gpu => g.interpolate(co_demand, own_demand),
        };
        v.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid2D {
        // f(x, y) = x + 10 y over axes {0,1,2} x {0,1}
        Grid2D::new(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 1.0],
            vec![0.0, 10.0, 1.0, 11.0, 2.0, 12.0],
        )
    }

    #[test]
    fn exact_at_nodes() {
        let g = grid();
        assert_eq!(g.interpolate(0.0, 0.0), 0.0);
        assert_eq!(g.interpolate(2.0, 1.0), 12.0);
        assert_eq!(g.interpolate(1.0, 0.0), 1.0);
    }

    #[test]
    fn bilinear_is_exact_for_bilinear_function() {
        let g = grid();
        assert!((g.interpolate(0.5, 0.5) - 5.5).abs() < 1e-12);
        assert!((g.interpolate(1.5, 0.25) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_axes() {
        let g = grid();
        assert_eq!(g.interpolate(-5.0, 0.0), 0.0);
        assert_eq!(g.interpolate(99.0, 99.0), 12.0);
    }

    #[test]
    fn stats() {
        let g = grid();
        assert_eq!(g.max_value(), 12.0);
        assert!((g.mean_value() - 6.0).abs() < 1e-12);
        assert!((g.frac_in(0.0, 2.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_mismatched_dims() {
        let _ = Grid2D::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn surface_orients_axes_per_device() {
        // CPU grid: rows = cpu demand; GPU grid mirrors (paper swaps axes
        // between Figures 5 and 6). Use asymmetric values to verify.
        let cpu_grid = Grid2D::new(vec![0.0, 10.0], vec![0.0, 10.0], vec![0.0, 0.5, 0.1, 0.65]);
        let gpu_grid = Grid2D::new(vec![0.0, 10.0], vec![0.0, 10.0], vec![0.0, 0.2, 0.3, 0.45]);
        let s = DegradationSurface {
            deg: PerDevice::new(cpu_grid, gpu_grid),
        };
        // CPU job with own demand 10, co-runner 0: value at (cpu=10, gpu=0)
        assert!((s.degradation(Device::Cpu, 10.0, 0.0) - 0.1).abs() < 1e-12);
        // GPU job with own demand 10, co-runner 0: grid is indexed
        // (cpu_demand=co, gpu_demand=own)
        assert!((s.degradation(Device::Gpu, 10.0, 0.0) - 0.2).abs() < 1e-12);
        assert!(s.degradation(Device::Cpu, 0.0, 0.0).abs() < 1e-12);
    }

    #[test]
    fn degradation_never_negative() {
        let g = Grid2D::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![-0.05, 0.0, 0.0, 0.1]);
        let s = DegradationSurface {
            deg: PerDevice::new(g.clone(), g),
        };
        assert_eq!(s.degradation(Device::Cpu, 0.0, 0.0), 0.0);
    }
}
