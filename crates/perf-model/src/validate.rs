//! Characterization quality checks: leave-one-out cross-validation of the
//! degradation surfaces, and grid-resolution sensitivity.
//!
//! The paper picks 11 demand levels per axis without justifying the
//! resolution; these tools quantify what the interpolation loses at a given
//! grid, so a deployment can trade characterization time against accuracy.

use crate::surface::Grid2D;
use apu_sim::PerDevice;
use serde::{Deserialize, Serialize};

/// Result of leave-one-out validation over one grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LooReport {
    /// Mean absolute interpolation error at interior nodes (degradation
    /// units, e.g. 0.03 = 3 percentage points).
    pub mean_abs_err: f64,
    /// Maximum absolute error.
    pub max_abs_err: f64,
    /// Number of interior nodes evaluated.
    pub nodes: usize,
}

/// Leave-one-out validation of a grid: each *interior* node is predicted
/// by bilinear interpolation from its four axis-aligned neighbors and the
/// prediction compared to the measured value.
pub fn leave_one_out(grid: &Grid2D) -> LooReport {
    let nc = grid.cpu_axis.len();
    let ng = grid.gpu_axis.len();
    let mut errs = Vec::new();
    for i in 1..nc - 1 {
        for j in 1..ng - 1 {
            // Interpolate from the surrounding cross (average of the two
            // 1-D linear interpolations through the node).
            let x = grid.cpu_axis[i];
            let y = grid.gpu_axis[j];
            let tx = (x - grid.cpu_axis[i - 1]) / (grid.cpu_axis[i + 1] - grid.cpu_axis[i - 1]);
            let ty = (y - grid.gpu_axis[j - 1]) / (grid.gpu_axis[j + 1] - grid.gpu_axis[j - 1]);
            let along_x = grid.at(i - 1, j) + tx * (grid.at(i + 1, j) - grid.at(i - 1, j));
            let along_y = grid.at(i, j - 1) + ty * (grid.at(i, j + 1) - grid.at(i, j - 1));
            let pred = 0.5 * (along_x + along_y);
            errs.push((pred - grid.at(i, j)).abs());
        }
    }
    let nodes = errs.len();
    let mean = if nodes > 0 {
        errs.iter().sum::<f64>() / nodes as f64
    } else {
        0.0
    };
    let max = errs.iter().copied().fold(0.0, f64::max);
    LooReport {
        mean_abs_err: mean,
        max_abs_err: max,
        nodes,
    }
}

/// Leave-one-out over both device surfaces of a stage.
pub fn validate_stage(stage: &crate::characterize::Stage) -> PerDevice<LooReport> {
    PerDevice::new(
        leave_one_out(&stage.surface.deg.cpu),
        leave_one_out(&stage.surface.deg.gpu),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_stage, CharacterizeConfig};
    use apu_sim::MachineConfig;

    #[test]
    fn perfectly_linear_grid_has_zero_error() {
        // f(x, y) = 2x + 3y is reproduced exactly by linear interpolation.
        let ax: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let vals: Vec<f64> = (0..5)
            .flat_map(|i| (0..5).map(move |j| 2.0 * i as f64 + 3.0 * j as f64))
            .collect();
        let g = Grid2D::new(ax.clone(), ax, vals);
        let r = leave_one_out(&g);
        assert_eq!(r.nodes, 9);
        assert!(r.mean_abs_err < 1e-12);
        assert!(r.max_abs_err < 1e-12);
    }

    #[test]
    fn quadratic_grid_has_bounded_error() {
        // f(x, y) = x^2: second differences are constant -> LOO error is
        // exactly the curvature term.
        let ax: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let vals: Vec<f64> = (0..6)
            .flat_map(|i| (0..6).map(move |_| (i * i) as f64))
            .collect();
        let g = Grid2D::new(ax.clone(), ax, vals);
        let r = leave_one_out(&g);
        assert!(r.mean_abs_err > 0.0);
        assert!(
            r.max_abs_err <= 1.0 + 1e-12,
            "curvature of x^2 on unit grid"
        );
    }

    #[test]
    fn tiny_grid_has_no_interior() {
        let g = Grid2D::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 4]);
        let r = leave_one_out(&g);
        assert_eq!(r.nodes, 0);
        assert_eq!(r.mean_abs_err, 0.0);
    }

    #[test]
    fn measured_surface_is_interpolation_friendly() {
        // The real degradation surface must be smooth enough that the
        // paper's interpolation approach makes sense: mean LOO error well
        // under 10 percentage points.
        let cfg = MachineConfig::ivy_bridge();
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 6;
        ccfg.micro_duration_s = 2.0;
        let stage = characterize_stage(&cfg, &ccfg, cfg.freqs.max_setting());
        let rep = validate_stage(&stage);
        assert!(
            rep.cpu.mean_abs_err < 0.10,
            "cpu surface LOO error {}",
            rep.cpu.mean_abs_err
        );
        assert!(
            rep.gpu.mean_abs_err < 0.10,
            "gpu surface LOO error {}",
            rep.gpu.mean_abs_err
        );
    }
}
