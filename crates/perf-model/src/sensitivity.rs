//! Frequency-sensitivity analysis from standalone profiles.
//!
//! Memory-bound code barely speeds up with higher clocks, compute-bound
//! code scales almost linearly; under a power cap this distinction decides
//! where the watts should go. These metrics are derived purely from the
//! standalone profiles the runtime already collects, and are the
//! model-level counterpart of the engine's roofline behaviour.

use crate::profile::JobProfile;
use apu_sim::{Device, MachineConfig, PerDevice};
use serde::{Deserialize, Serialize};

/// Frequency sensitivity of one job on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Measured speedup from the lowest to the highest level
    /// (`t_floor / t_max`).
    pub speedup_full_range: f64,
    /// The speedup a perfectly compute-bound job would get (`f_max / f_min`).
    pub ideal_speedup: f64,
    /// Normalized frequency sensitivity in `[0, 1]`:
    /// 0 = fully memory-bound (no speedup), 1 = fully compute-bound.
    pub index: f64,
}

/// Compute frequency sensitivity of a job on `device`.
pub fn sensitivity(cfg: &MachineConfig, profile: &JobProfile, device: Device) -> Sensitivity {
    let table = cfg.freqs.table(device);
    let k = table.len();
    let t_floor = profile.time(device, 0);
    let t_max = profile.time(device, k - 1);
    let speedup = if t_max > 0.0 { t_floor / t_max } else { 1.0 };
    let ideal = table.max_ghz() / table.min_ghz();
    let index = if ideal > 1.0 {
        ((speedup - 1.0) / (ideal - 1.0)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    Sensitivity {
        speedup_full_range: speedup,
        ideal_speedup: ideal,
        index,
    }
}

/// Sensitivity on both devices.
pub fn sensitivity_both(cfg: &MachineConfig, profile: &JobProfile) -> PerDevice<Sensitivity> {
    PerDevice::from_fn(|d| sensitivity(cfg, profile, d))
}

/// Given a fixed power budget to distribute between the two devices'
/// clocks, which device benefits more from the next watt? A simple
/// comparator over sensitivity indices, used as a tie-breaking heuristic
/// and in reports.
pub fn prefers_watts(cpu_sens: Sensitivity, gpu_sens: Sensitivity) -> Device {
    if cpu_sens.index >= gpu_sens.index {
        Device::Cpu
    } else {
        Device::Gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_job, ProfileMethod};

    #[test]
    fn compute_bound_jobs_are_more_sensitive_than_memory_bound() {
        let cfg = MachineConfig::ivy_bridge();
        let leu = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "leukocyte").unwrap(),
            ProfileMethod::Analytic,
        );
        let sc = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "streamcluster").unwrap(),
            ProfileMethod::Analytic,
        );
        let s_leu = sensitivity(&cfg, &leu, Device::Gpu);
        let s_sc = sensitivity(&cfg, &sc, Device::Gpu);
        assert!(
            s_leu.index > s_sc.index,
            "leukocyte {} vs streamcluster {}",
            s_leu.index,
            s_sc.index
        );
        assert!(s_leu.index > 0.5, "compute-heavy job scales with clock");
        assert!((0.0..=1.0).contains(&s_sc.index));
    }

    #[test]
    fn ideal_speedup_matches_ladder() {
        let cfg = MachineConfig::ivy_bridge();
        let p = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "lud").unwrap(),
            ProfileMethod::Analytic,
        );
        let s = sensitivity(&cfg, &p, Device::Cpu);
        assert!((s.ideal_speedup - 3.0).abs() < 1e-9, "3.6 / 1.2 GHz");
        assert!(s.speedup_full_range > 1.0);
        assert!(s.speedup_full_range <= s.ideal_speedup + 1e-9);
    }

    #[test]
    fn both_devices_reported() {
        let cfg = MachineConfig::ivy_bridge();
        let p = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "dwt2d").unwrap(),
            ProfileMethod::Analytic,
        );
        let both = sensitivity_both(&cfg, &p);
        assert!(both.cpu.index > 0.0);
        assert!(both.gpu.index > 0.0);
    }

    #[test]
    fn watt_preference_comparator() {
        let hi = Sensitivity {
            speedup_full_range: 2.8,
            ideal_speedup: 3.0,
            index: 0.9,
        };
        let lo = Sensitivity {
            speedup_full_range: 1.2,
            ideal_speedup: 3.0,
            index: 0.1,
        };
        assert_eq!(prefers_watts(hi, lo), Device::Cpu);
        assert_eq!(prefers_watts(lo, hi), Device::Gpu);
    }
}
