//! Characterization of the co-run degradation space with the controllable
//! micro-benchmark (paper Section V-B).
//!
//! For each frequency *stage* (a small set of frequency settings), the
//! micro-benchmark is synthesized at evenly spaced demand levels on each
//! device, and every (CPU level, GPU level) pair is co-run to steady state
//! to measure both sides' degradations. The paper uses 11 levels covering
//! 0–11 GB/s; exhaustive profiling of real programs would need
//! `O(N^2 K^2)` runs, while this needs only `O(G^2 S)` micro-runs
//! independent of the number of programs.
//!
//! Pair measurements are embarrassingly parallel and are fanned out over
//! worker threads with `crossbeam::scope`.

use crate::surface::{DegradationSurface, Grid2D};
use apu_sim::{run_solo, run_with_background, Device, FreqSetting, MachineConfig, PerDevice};
use kernels::MicroKernel;
use serde::{Deserialize, Serialize};

/// Parameters of a characterization sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CharacterizeConfig {
    /// CPU frequency levels at which stages are measured.
    pub cpu_stage_levels: Vec<usize>,
    /// GPU frequency levels at which stages are measured.
    pub gpu_stage_levels: Vec<usize>,
    /// Demand-axis resolution (the paper uses 11 points).
    pub grid_points: usize,
    /// Solo duration of each micro-kernel instance, seconds.
    pub micro_duration_s: f64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl CharacterizeConfig {
    /// The paper's setup: 11 demand levels, with a 3x3 grid of frequency
    /// stages spanning each ladder.
    pub fn paper(cfg: &MachineConfig) -> Self {
        let cmax = cfg.freqs.cpu.max_level();
        let gmax = cfg.freqs.gpu.max_level();
        CharacterizeConfig {
            cpu_stage_levels: vec![0, cmax / 2, cmax],
            gpu_stage_levels: vec![0, gmax / 2, gmax],
            grid_points: 11,
            micro_duration_s: 4.0,
            threads: 0,
        }
    }

    /// A coarse, fast configuration for tests: 2x2 stages, 5 demand levels.
    pub fn fast(cfg: &MachineConfig) -> Self {
        CharacterizeConfig {
            cpu_stage_levels: vec![0, cfg.freqs.cpu.max_level()],
            gpu_stage_levels: vec![0, cfg.freqs.gpu.max_level()],
            grid_points: 5,
            micro_duration_s: 2.0,
            threads: 0,
        }
    }
}

/// One characterized frequency stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// The frequency setting this stage was measured at.
    pub setting: FreqSetting,
    /// CPU clock of the stage, GHz.
    pub cpu_ghz: f64,
    /// GPU clock of the stage, GHz.
    pub gpu_ghz: f64,
    /// Measured degradation surfaces.
    pub surface: DegradationSurface,
}

/// Run the full characterization sweep: every stage in the config.
pub fn characterize(cfg: &MachineConfig, ccfg: &CharacterizeConfig) -> Vec<Stage> {
    let mut stages = Vec::new();
    for &cl in &ccfg.cpu_stage_levels {
        for &gl in &ccfg.gpu_stage_levels {
            let setting = FreqSetting::new(cl, gl);
            stages.push(characterize_stage(cfg, ccfg, setting));
        }
    }
    stages
}

/// Characterize a single frequency stage.
pub fn characterize_stage(
    cfg: &MachineConfig,
    ccfg: &CharacterizeConfig,
    setting: FreqSetting,
) -> Stage {
    let n = ccfg.grid_points;
    assert!(n >= 2);

    // Demand axes span 0..the device's effective peak at this stage.
    let axis = |device: Device| -> Vec<f64> {
        let dev = cfg.device(device);
        let f = cfg.freqs.ghz(device, setting);
        let peak = dev.solo_bandwidth(f, cfg.f_max(device));
        (0..n).map(|i| peak * i as f64 / (n - 1) as f64).collect()
    };
    let cpu_axis = axis(Device::Cpu);
    let gpu_axis = axis(Device::Gpu);

    // Synthesize one micro-kernel per axis point and measure its solo time.
    let make = |device: Device, target: f64| {
        MicroKernel::for_bandwidth(cfg, device, setting, target, ccfg.micro_duration_s).to_job(cfg)
    };
    let cpu_kernels: Vec<_> = cpu_axis.iter().map(|&d| make(Device::Cpu, d)).collect();
    let gpu_kernels: Vec<_> = gpu_axis.iter().map(|&d| make(Device::Gpu, d)).collect();
    let cpu_solo: Vec<f64> = cpu_kernels
        .iter()
        .map(|j| run_solo(cfg, j, Device::Cpu, setting).expect("solo").time_s)
        .collect();
    let gpu_solo: Vec<f64> = gpu_kernels
        .iter()
        .map(|j| run_solo(cfg, j, Device::Gpu, setting).expect("solo").time_s)
        .collect();

    // Measure every pair, fanned out over threads. Each worker owns a chunk
    // of (i, j) indices and returns (cpu_deg, gpu_deg) per pair.
    let pairs: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
    let threads = if ccfg.threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
    } else {
        ccfg.threads
    };
    let chunk = pairs.len().div_ceil(threads);

    let mut cpu_vals = vec![0.0; n * n];
    let mut gpu_vals = vec![0.0; n * n];
    let results: Vec<Vec<(usize, usize, f64, f64)>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk.max(1))
            .map(|chunk_pairs| {
                let cpu_kernels = &cpu_kernels;
                let gpu_kernels = &gpu_kernels;
                let cpu_solo = &cpu_solo;
                let gpu_solo = &gpu_solo;
                s.spawn(move |_| {
                    chunk_pairs
                        .iter()
                        .map(|&(i, j)| {
                            let cj = &cpu_kernels[i];
                            let gj = &gpu_kernels[j];
                            let tc = run_with_background(cfg, cj, Device::Cpu, gj, setting)
                                .expect("co-run");
                            let tg = run_with_background(cfg, gj, Device::Gpu, cj, setting)
                                .expect("co-run");
                            let dc = (tc / cpu_solo[i] - 1.0).max(0.0);
                            let dg = (tg / gpu_solo[j] - 1.0).max(0.0);
                            (i, j, dc, dg)
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
    .expect("scope");

    for chunk in results {
        for (i, j, dc, dg) in chunk {
            cpu_vals[i * n + j] = dc;
            gpu_vals[i * n + j] = dg;
        }
    }

    // A degenerate axis (all-zero peak) cannot happen on a real config, so
    // Grid2D's strictly-increasing invariant holds.
    let surface = DegradationSurface {
        deg: PerDevice::new(
            Grid2D::new(cpu_axis.clone(), gpu_axis.clone(), cpu_vals),
            Grid2D::new(cpu_axis, gpu_axis, gpu_vals),
        ),
    };

    Stage {
        setting,
        cpu_ghz: cfg.freqs.ghz(Device::Cpu, setting),
        gpu_ghz: cfg.freqs.ghz(Device::Gpu, setting),
        surface,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::ivy_bridge()
    }

    #[test]
    fn stage_at_max_frequency_has_paper_shape() {
        let cfg = cfg();
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 6;
        let stage = characterize_stage(&cfg, &ccfg, cfg.freqs.max_setting());
        let cpu = &stage.surface.deg.cpu;
        let gpu = &stage.surface.deg.gpu;

        // Paper Fig 5/6: max CPU degradation ~65%, max GPU ~45%; CPU worse
        // than GPU at the high-high corner.
        let n = ccfg.grid_points;
        let cpu_corner = cpu.at(n - 1, n - 1);
        let gpu_corner = gpu.at(n - 1, n - 1);
        assert!(
            cpu_corner > gpu_corner,
            "cpu {cpu_corner} vs gpu {gpu_corner}"
        );
        assert!(
            (0.45..=0.90).contains(&cpu_corner),
            "cpu corner {cpu_corner}"
        );
        assert!(
            (0.25..=0.60).contains(&gpu_corner),
            "gpu corner {gpu_corner}"
        );

        // No contention when one side is idle.
        assert!(cpu.at(n - 1, 0) < 0.05, "no co-runner, no degradation");
        assert!(gpu.at(0, n - 1) < 0.05);

        // CPU suffers <=20% in about half the cases; GPU suffers broadly.
        assert!(
            cpu.frac_in(0.0, 0.20) >= 0.4,
            "cpu mostly mild: {}",
            cpu.frac_in(0.0, 0.20)
        );
        assert!(
            gpu.mean_value() > cpu.mean_value() * 0.9,
            "gpu degradations are broad: {} vs {}",
            gpu.mean_value(),
            cpu.mean_value()
        );
    }

    #[test]
    fn degradation_monotone_in_corunner_demand() {
        let cfg = cfg();
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 5;
        let stage = characterize_stage(&cfg, &ccfg, cfg.freqs.max_setting());
        let n = ccfg.grid_points;
        let cpu = &stage.surface.deg.cpu;
        for i in 0..n {
            for j in 1..n {
                assert!(
                    cpu.at(i, j) + 0.03 >= cpu.at(i, j - 1),
                    "row {i}: col {j} not monotone"
                );
            }
        }
    }

    #[test]
    fn full_sweep_produces_all_stages() {
        let cfg = cfg();
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 3;
        ccfg.micro_duration_s = 1.5;
        let stages = characterize(&cfg, &ccfg);
        assert_eq!(stages.len(), 4); // 2x2 stages
        for s in &stages {
            assert_eq!(s.surface.deg.cpu.cpu_axis.len(), 3);
            assert!(s.cpu_ghz > 0.0 && s.gpu_ghz > 0.0);
        }
    }

    #[test]
    fn low_frequency_stage_has_smaller_axes() {
        let cfg = cfg();
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 3;
        ccfg.micro_duration_s = 1.5;
        let lo = characterize_stage(&cfg, &ccfg, FreqSetting::new(0, 0));
        let hi = characterize_stage(&cfg, &ccfg, cfg.freqs.max_setting());
        let lo_max = *lo.surface.deg.cpu.cpu_axis.last().unwrap();
        let hi_max = *hi.surface.deg.cpu.cpu_axis.last().unwrap();
        assert!(
            lo_max < hi_max,
            "axis peak shrinks with frequency: {lo_max} vs {hi_max}"
        );
    }
}
