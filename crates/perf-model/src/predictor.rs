//! The staged-interpolation co-run predictor (paper Section V-C) and the
//! standalone-power-sum co-run power predictor (Section VI-B, Figure 8).
//!
//! Given the characterized stages, predicting the co-run behaviour of two
//! *real* programs needs only their standalone profiles:
//!
//! 1. look up each program's solo DRAM demand at the queried frequency,
//! 2. evaluate the degradation surfaces of the four stages bracketing the
//!    queried (CPU GHz, GPU GHz) point at those demand coordinates,
//! 3. bilinearly blend across the stage grid.
//!
//! Power is predicted as the sum of the two standalone package powers minus
//! the double-counted idle package power.

use crate::characterize::Stage;
use crate::profile::{idle_package_power, JobProfile};
use apu_sim::{Device, FreqSetting, MachineConfig, PerDevice};
use serde::{Deserialize, Serialize};

/// A co-run performance + power predictor assembled from characterization
/// stages and the machine description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StagedPredictor {
    stages: Vec<Stage>,
    /// Distinct stage CPU clocks, sorted ascending.
    cpu_ghz_axis: Vec<f64>,
    /// Distinct stage GPU clocks, sorted ascending.
    gpu_ghz_axis: Vec<f64>,
    /// `stage_index[ci * gpu_ghz_axis.len() + gi]` into `stages`.
    stage_index: Vec<usize>,
    idle_power_w: f64,
}

impl StagedPredictor {
    /// Assemble a predictor from characterized stages.
    ///
    /// # Panics
    /// Panics if the stages do not form a complete rectangular grid over
    /// their distinct CPU/GPU clocks.
    pub fn new(cfg: &MachineConfig, stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty());
        let mut cpu_ghz_axis: Vec<f64> = stages.iter().map(|s| s.cpu_ghz).collect();
        let mut gpu_ghz_axis: Vec<f64> = stages.iter().map(|s| s.gpu_ghz).collect();
        dedup_sorted(&mut cpu_ghz_axis);
        dedup_sorted(&mut gpu_ghz_axis);
        let mut stage_index = vec![usize::MAX; cpu_ghz_axis.len() * gpu_ghz_axis.len()];
        for (k, s) in stages.iter().enumerate() {
            let ci = position(&cpu_ghz_axis, s.cpu_ghz);
            let gi = position(&gpu_ghz_axis, s.gpu_ghz);
            stage_index[ci * gpu_ghz_axis.len() + gi] = k;
        }
        assert!(
            stage_index.iter().all(|&i| i != usize::MAX),
            "stages must form a complete frequency grid"
        );
        StagedPredictor {
            stages,
            cpu_ghz_axis,
            gpu_ghz_axis,
            stage_index,
            idle_power_w: idle_package_power(cfg),
        }
    }

    /// The characterization stages backing this predictor.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    fn stage(&self, ci: usize, gi: usize) -> &Stage {
        &self.stages[self.stage_index[ci * self.gpu_ghz_axis.len() + gi]]
    }

    /// Predict the degradation of the job on `device` whose solo demand at
    /// the queried setting is `own_demand`, co-running against a job with
    /// solo demand `co_demand`, at clocks `(cpu_ghz, gpu_ghz)`.
    pub fn degradation_at(
        &self,
        device: Device,
        own_demand: f64,
        co_demand: f64,
        cpu_ghz: f64,
        gpu_ghz: f64,
    ) -> f64 {
        let (c0, c1, tx) = bracket(&self.cpu_ghz_axis, cpu_ghz);
        let (g0, g1, ty) = bracket(&self.gpu_ghz_axis, gpu_ghz);
        let q = |ci: usize, gi: usize| {
            self.stage(ci, gi)
                .surface
                .degradation(device, own_demand, co_demand)
        };
        let a = q(c0, g0) + (q(c0, g1) - q(c0, g0)) * ty;
        let b = q(c1, g0) + (q(c1, g1) - q(c1, g0)) * ty;
        (a + (b - a) * tx).max(0.0)
    }

    /// `d_{i,p,f}^{j,g}` for real programs: degradation of `cpu_job` at CPU
    /// level `f` and of `gpu_job` at GPU level `g` when co-running.
    pub fn predict_pair_degradation(
        &self,
        cfg: &MachineConfig,
        cpu_job: &JobProfile,
        f: usize,
        gpu_job: &JobProfile,
        g: usize,
    ) -> PerDevice<f64> {
        let setting = FreqSetting::new(f, g);
        let cpu_ghz = cfg.freqs.ghz(Device::Cpu, setting);
        let gpu_ghz = cfg.freqs.ghz(Device::Gpu, setting);
        let dc = cpu_job.demand(Device::Cpu, f);
        let dg = gpu_job.demand(Device::Gpu, g);
        PerDevice::new(
            self.degradation_at(Device::Cpu, dc, dg, cpu_ghz, gpu_ghz),
            self.degradation_at(Device::Gpu, dg, dc, cpu_ghz, gpu_ghz),
        )
    }

    /// Predicted co-run *times* for a steady co-run of the pair (both jobs
    /// running for their whole duration): `l * (1 + d)`.
    pub fn predict_pair_times(
        &self,
        cfg: &MachineConfig,
        cpu_job: &JobProfile,
        f: usize,
        gpu_job: &JobProfile,
        g: usize,
    ) -> PerDevice<f64> {
        let d = self.predict_pair_degradation(cfg, cpu_job, f, gpu_job, g);
        PerDevice::new(
            cpu_job.time(Device::Cpu, f) * (1.0 + d.cpu),
            gpu_job.time(Device::Gpu, g) * (1.0 + d.gpu),
        )
    }

    /// Predicted co-run package power: sum of standalone powers minus the
    /// double-counted idle package power. Either side may be absent (solo).
    pub fn predict_power(
        &self,
        cpu_job: Option<(&JobProfile, usize)>,
        gpu_job: Option<(&JobProfile, usize)>,
    ) -> f64 {
        match (cpu_job, gpu_job) {
            (Some((cj, f)), Some((gj, g))) => {
                cj.power(Device::Cpu, f) + gj.power(Device::Gpu, g) - self.idle_power_w
            }
            (Some((cj, f)), None) => cj.power(Device::Cpu, f),
            (None, Some((gj, g))) => gj.power(Device::Gpu, g),
            (None, None) => self.idle_power_w,
        }
    }

    /// Whether a pair (or solo run) fits under `cap_w` at the given levels.
    pub fn fits_cap(
        &self,
        cpu_job: Option<(&JobProfile, usize)>,
        gpu_job: Option<(&JobProfile, usize)>,
        cap_w: f64,
    ) -> bool {
        self.predict_power(cpu_job, gpu_job) <= cap_w
    }
}

fn dedup_sorted(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
}

fn position(axis: &[f64], x: f64) -> usize {
    axis.iter()
        .position(|&v| (v - x).abs() < 1e-9)
        .expect("stage clock must be on the axis")
}

/// Bracket `x` in `axis` (clamped), returning `(lo, hi, weight)`.
fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
    let n = axis.len();
    if n == 1 || x <= axis[0] {
        return (0, 0, 0.0);
    }
    if x >= axis[n - 1] {
        return (n - 1, n - 1, 0.0);
    }
    let mut lo = 0;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if axis[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
    (lo, hi, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizeConfig};
    use crate::profile::{profile_job, ProfileMethod};
    use apu_sim::MachineConfig;

    fn predictor(cfg: &MachineConfig) -> StagedPredictor {
        let mut ccfg = CharacterizeConfig::fast(cfg);
        ccfg.grid_points = 5;
        ccfg.micro_duration_s = 2.0;
        StagedPredictor::new(cfg, characterize(cfg, &ccfg))
    }

    #[test]
    fn bracket_clamps_and_interpolates() {
        let axis = vec![1.0, 2.0, 4.0];
        assert_eq!(bracket(&axis, 0.5), (0, 0, 0.0));
        assert_eq!(bracket(&axis, 9.0), (2, 2, 0.0));
        let (lo, hi, t) = bracket(&axis, 3.0);
        assert_eq!((lo, hi), (1, 2));
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_demand_predicts_zero_degradation() {
        let cfg = MachineConfig::ivy_bridge();
        let p = predictor(&cfg);
        let d = p.degradation_at(Device::Cpu, 0.0, 0.0, 3.6, 1.25);
        assert!(d < 0.03, "got {d}");
    }

    #[test]
    fn heavy_pair_predicts_heavy_degradation() {
        let cfg = MachineConfig::ivy_bridge();
        let p = predictor(&cfg);
        let d_cpu = p.degradation_at(Device::Cpu, 10.0, 10.0, 3.6, 1.25);
        let d_gpu = p.degradation_at(Device::Gpu, 10.0, 10.0, 3.6, 1.25);
        assert!(d_cpu > 0.35, "cpu {d_cpu}");
        assert!(d_gpu > 0.25, "gpu {d_gpu}");
        assert!(d_cpu > d_gpu, "cpu suffers more at the high-high corner");
    }

    #[test]
    fn degradation_monotone_in_co_demand() {
        let cfg = MachineConfig::ivy_bridge();
        let p = predictor(&cfg);
        let mut prev = 0.0;
        for co in [0.0, 3.0, 6.0, 9.0, 11.0] {
            let d = p.degradation_at(Device::Gpu, 7.0, co, 3.6, 1.25);
            assert!(d + 0.05 >= prev, "not monotone at co={co}");
            prev = d;
        }
    }

    #[test]
    fn interpolates_between_stages() {
        let cfg = MachineConfig::ivy_bridge();
        let p = predictor(&cfg);
        let lo = p.degradation_at(Device::Cpu, 8.0, 8.0, 1.2, 0.35);
        let hi = p.degradation_at(Device::Cpu, 8.0, 8.0, 3.6, 1.25);
        let mid = p.degradation_at(Device::Cpu, 8.0, 8.0, 2.4, 0.8);
        let (a, b) = if lo < hi { (lo, hi) } else { (hi, lo) };
        assert!(
            mid >= a - 0.05 && mid <= b + 0.05,
            "mid {mid} outside [{a},{b}]"
        );
    }

    #[test]
    fn pair_prediction_reasonable_for_real_programs() {
        let cfg = MachineConfig::ivy_bridge();
        let p = predictor(&cfg);
        let sc = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "streamcluster").unwrap(),
            ProfileMethod::Analytic,
        );
        let cfd = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "cfd").unwrap(),
            ProfileMethod::Analytic,
        );
        let f = cfg.freqs.cpu.max_level();
        let g = cfg.freqs.gpu.max_level();
        let d = p.predict_pair_degradation(&cfg, &cfd, f, &sc, g);
        // two heavy streamers: both sides degrade, the GPU side (higher
        // own demand) more than the moderate-demand CPU side
        assert!(d.cpu > 0.005, "cpu side {}", d.cpu);
        assert!(d.gpu > 0.015, "gpu side {}", d.gpu);
        assert!(d.gpu > d.cpu);
        let t = p.predict_pair_times(&cfg, &cfd, f, &sc, g);
        assert!(t.cpu > cfd.time(Device::Cpu, f));
        assert!(t.gpu > sc.time(Device::Gpu, g));
    }

    #[test]
    fn power_prediction_composes_standalone() {
        let cfg = MachineConfig::ivy_bridge();
        let p = predictor(&cfg);
        let a = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "lud").unwrap(),
            ProfileMethod::Analytic,
        );
        let b = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "srad").unwrap(),
            ProfileMethod::Analytic,
        );
        let f = cfg.freqs.cpu.max_level();
        let g = cfg.freqs.gpu.max_level();
        let solo_a = p.predict_power(Some((&a, f)), None);
        let solo_b = p.predict_power(None, Some((&b, g)));
        let both = p.predict_power(Some((&a, f)), Some((&b, g)));
        assert!(both > solo_a && both > solo_b);
        assert!((both - (solo_a + solo_b - crate::profile::idle_package_power(&cfg))).abs() < 1e-9);
        assert!(p.predict_power(None, None) > 0.0);
    }

    #[test]
    fn fits_cap_consistent_with_power() {
        let cfg = MachineConfig::ivy_bridge();
        let p = predictor(&cfg);
        let a = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "heartwall").unwrap(),
            ProfileMethod::Analytic,
        );
        let b = profile_job(
            &cfg,
            &kernels::by_name(&cfg, "hotspot").unwrap(),
            ProfileMethod::Analytic,
        );
        let f = cfg.freqs.cpu.max_level();
        let g = cfg.freqs.gpu.max_level();
        let w = p.predict_power(Some((&a, f)), Some((&b, g)));
        assert!(!p.fits_cap(Some((&a, f)), Some((&b, g)), w - 0.1));
        assert!(p.fits_cap(Some((&a, f)), Some((&b, g)), w + 0.1));
        // At the lowest levels the pair must fit a 15 W cap.
        assert!(p.fits_cap(Some((&a, 0)), Some((&b, 0)), 15.0));
    }

    #[test]
    #[should_panic(expected = "complete frequency grid")]
    fn incomplete_stage_grid_rejected() {
        let cfg = MachineConfig::ivy_bridge();
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 3;
        ccfg.micro_duration_s = 1.0;
        let mut stages = characterize(&cfg, &ccfg);
        stages.pop(); // break the grid
        let _ = StagedPredictor::new(&cfg, stages);
    }
}
