//! Error statistics for model validation (paper Figures 7 and 8).

use serde::{Deserialize, Serialize};

/// Relative error of a prediction against ground truth, `|pred - real| / real`.
///
/// # Panics
/// Panics if `real` is not strictly positive.
pub fn relative_error(pred: f64, real: f64) -> f64 {
    assert!(real > 0.0, "ground truth must be positive");
    (pred - real).abs() / real
}

/// A histogram of error rates over fixed buckets, as the paper plots in
/// Figures 7 and 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorHistogram {
    /// Bucket edges; bucket `k` covers `[edges[k], edges[k+1])`, with a
    /// final open bucket `[edges.last(), inf)`.
    pub edges: Vec<f64>,
    /// Counts per bucket (`edges.len()` buckets).
    pub counts: Vec<usize>,
    /// All recorded errors (kept for mean/max).
    pub errors: Vec<f64>,
}

impl ErrorHistogram {
    /// Histogram over the paper's buckets: 0-5%, 5-10%, ..., 25-30%, >30%.
    pub fn paper_buckets() -> Self {
        Self::new(vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30])
    }

    /// Histogram over fine buckets for the power model (paper Figure 8
    /// uses 0-2%, 2-4%, 4-6%, 6-8%).
    pub fn power_buckets() -> Self {
        Self::new(vec![0.0, 0.02, 0.04, 0.06, 0.08])
    }

    /// Histogram with custom bucket edges (strictly increasing, first 0).
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        let n = edges.len();
        ErrorHistogram {
            edges,
            counts: vec![0; n],
            errors: Vec::new(),
        }
    }

    /// Record one error value (must be >= 0).
    pub fn add(&mut self, err: f64) {
        assert!(err >= 0.0 && err.is_finite());
        let mut bucket = self.edges.len() - 1;
        for k in 0..self.edges.len() - 1 {
            if err >= self.edges[k] && err < self.edges[k + 1] {
                bucket = k;
                break;
            }
        }
        self.counts[bucket] += 1;
        self.errors.push(err);
    }

    /// Total number of recorded errors.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Whether no errors were recorded.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Mean error.
    pub fn mean(&self) -> f64 {
        if self.errors.is_empty() {
            0.0
        } else {
            self.errors.iter().sum::<f64>() / self.errors.len() as f64
        }
    }

    /// Maximum error.
    pub fn max(&self) -> f64 {
        self.errors.iter().copied().fold(0.0, f64::max)
    }

    /// Fraction of errors strictly below `threshold`.
    pub fn frac_below(&self, threshold: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        let n = self.errors.iter().filter(|&&e| e < threshold).count();
        n as f64 / self.errors.len() as f64
    }

    /// Fraction of samples in bucket `k`.
    pub fn frac_in_bucket(&self, k: usize) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.counts[k] as f64 / self.errors.len() as f64
    }

    /// Render rows of `(bucket label, fraction)` for reports.
    pub fn rows(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for k in 0..self.edges.len() {
            let label = if k + 1 < self.edges.len() {
                format!(
                    "{:.0}-{:.0}%",
                    self.edges[k] * 100.0,
                    self.edges[k + 1] * 100.0
                )
            } else {
                format!(">{:.0}%", self.edges[k] * 100.0)
            };
            out.push((label, self.frac_in_bucket(k)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(9.0, 10.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(10.0, 10.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn relative_error_rejects_zero_truth() {
        let _ = relative_error(1.0, 0.0);
    }

    #[test]
    fn bucket_assignment() {
        let mut h = ErrorHistogram::paper_buckets();
        h.add(0.03); // 0-5
        h.add(0.07); // 5-10
        h.add(0.29); // 25-30
        h.add(0.50); // >30
        assert_eq!(h.counts, vec![1, 1, 0, 0, 0, 1, 1]);
        assert_eq!(h.len(), 4);
        assert!((h.frac_below(0.10) - 0.5).abs() < 1e-12);
        assert!((h.max() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_goes_to_upper_bucket() {
        let mut h = ErrorHistogram::new(vec![0.0, 0.1, 0.2]);
        h.add(0.1);
        assert_eq!(h.counts, vec![0, 1, 0]);
    }

    #[test]
    fn mean_and_rows() {
        let mut h = ErrorHistogram::power_buckets();
        for e in [0.01, 0.01, 0.03, 0.07] {
            h.add(e);
        }
        assert!((h.mean() - 0.03).abs() < 1e-12);
        let rows = h.rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, "0-2%");
        assert!((rows[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(rows[4].0, ">8%");
    }

    #[test]
    fn empty_histogram_stats() {
        let h = ErrorHistogram::paper_buckets();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.frac_below(0.5), 0.0);
        assert_eq!(h.frac_in_bucket(0), 0.0);
    }
}
