//! Persistence for the offline artifacts: standalone profiles and
//! characterization stages.
//!
//! Characterization is a property of the *machine*, not of any particular
//! batch, so a deployed runtime measures it once and caches it. The format
//! is a small, versioned, line-oriented text format (no external parser
//! dependencies): `key = value` scalars and whitespace-separated `f64`
//! vectors, grouped in `[section]` blocks.

use crate::characterize::Stage;
use crate::probe::LlcVulnerability;
use crate::profile::{DeviceProfile, JobProfile};
use crate::surface::{DegradationSurface, Grid2D};
use apu_sim::{FreqSetting, PerDevice};
use std::fmt::Write as _;
use std::path::Path;

/// Format version written to every file.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from loading persisted artifacts.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is structurally invalid.
    Malformed(String),
    /// The file has an unsupported version.
    Version(u32),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Malformed(m) => write!(f, "malformed file: {m}"),
            PersistError::Version(v) => write!(f, "unsupported format version {v}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> PersistError {
    PersistError::Malformed(msg.into())
}

// ---------------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------------

fn write_vec(out: &mut String, key: &str, v: &[f64]) {
    let _ = write!(out, "{key} =");
    for x in v {
        let _ = write!(out, " {x:e}");
    }
    out.push('\n');
}

/// Serialize characterization stages.
pub fn stages_to_string(stages: &[Stage]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "format = corun-stages");
    let _ = writeln!(out, "version = {FORMAT_VERSION}");
    let _ = writeln!(out, "stages = {}", stages.len());
    for (k, s) in stages.iter().enumerate() {
        let _ = writeln!(out, "[stage {k}]");
        let _ = writeln!(out, "cpu_level = {}", s.setting.cpu);
        let _ = writeln!(out, "gpu_level = {}", s.setting.gpu);
        let _ = writeln!(out, "cpu_ghz = {:e}", s.cpu_ghz);
        let _ = writeln!(out, "gpu_ghz = {:e}", s.gpu_ghz);
        for (label, grid) in [("cpu", &s.surface.deg.cpu), ("gpu", &s.surface.deg.gpu)] {
            write_vec(&mut out, &format!("{label}_axis_cpu"), &grid.cpu_axis);
            write_vec(&mut out, &format!("{label}_axis_gpu"), &grid.gpu_axis);
            write_vec(&mut out, &format!("{label}_values"), &grid.values);
        }
    }
    out
}

/// Serialize standalone profiles.
pub fn profiles_to_string(profiles: &[JobProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "format = corun-profiles");
    let _ = writeln!(out, "version = {FORMAT_VERSION}");
    let _ = writeln!(out, "jobs = {}", profiles.len());
    for (k, p) in profiles.iter().enumerate() {
        let _ = writeln!(out, "[job {k}]");
        let _ = writeln!(out, "name = {}", p.name);
        for (label, d) in [("cpu", &p.per_device.cpu), ("gpu", &p.per_device.gpu)] {
            write_vec(&mut out, &format!("{label}_time"), &d.time_s);
            write_vec(&mut out, &format!("{label}_demand"), &d.demand_gbps);
            write_vec(&mut out, &format!("{label}_power"), &d.power_w);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------------

/// A parsed `key = value` stream with section markers flattened out.
struct Fields<'a> {
    entries: Vec<(&'a str, &'a str)>,
    pos: usize,
}

impl<'a> Fields<'a> {
    fn parse(text: &'a str) -> Self {
        let entries = text
            .lines()
            .filter_map(|l| {
                let l = l.trim();
                if l.is_empty() || l.starts_with('#') || l.starts_with('[') {
                    return None;
                }
                let (k, v) = l.split_once('=')?;
                Some((k.trim(), v.trim()))
            })
            .collect();
        Fields { entries, pos: 0 }
    }

    fn expect(&mut self, key: &str) -> Result<&'a str, PersistError> {
        let (k, v) = self
            .entries
            .get(self.pos)
            .copied()
            .ok_or_else(|| malformed(format!("unexpected end of file, wanted `{key}`")))?;
        if k != key {
            return Err(malformed(format!("expected `{key}`, found `{k}`")));
        }
        self.pos += 1;
        Ok(v)
    }

    fn expect_num<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, PersistError> {
        self.expect(key)?
            .parse::<T>()
            .map_err(|_| malformed(format!("`{key}` is not a number")))
    }

    fn expect_vec(&mut self, key: &str) -> Result<Vec<f64>, PersistError> {
        self.expect(key)?
            .split_whitespace()
            .map(|t| {
                t.parse::<f64>()
                    .map_err(|_| malformed(format!("bad float in `{key}`")))
            })
            .collect()
    }
}

fn check_header(fields: &mut Fields<'_>, format: &str) -> Result<(), PersistError> {
    let f = fields.expect("format")?;
    if f != format {
        return Err(malformed(format!(
            "wrong format: `{f}` (wanted `{format}`)"
        )));
    }
    let v: u32 = fields.expect_num("version")?;
    if v != FORMAT_VERSION {
        return Err(PersistError::Version(v));
    }
    Ok(())
}

/// Deserialize characterization stages.
pub fn stages_from_string(text: &str) -> Result<Vec<Stage>, PersistError> {
    let mut f = Fields::parse(text);
    check_header(&mut f, "corun-stages")?;
    let n: usize = f.expect_num("stages")?;
    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        stages.push(read_stage(&mut f)?);
    }
    Ok(stages)
}

/// Deserialize standalone profiles.
pub fn profiles_from_string(text: &str) -> Result<Vec<JobProfile>, PersistError> {
    let mut f = Fields::parse(text);
    check_header(&mut f, "corun-profiles")?;
    let n: usize = f.expect_num("jobs")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_profile(&mut f)?);
    }
    Ok(out)
}

/// The complete offline artifact of a runtime: profiles, stages, and (when
/// probed) LLC vulnerabilities, serialized together.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBundle {
    /// Standalone profiles of the batch.
    pub profiles: Vec<JobProfile>,
    /// Characterization stages of the machine.
    pub stages: Vec<Stage>,
    /// Per-job LLC vulnerabilities, if the probe ran.
    pub vulnerabilities: Option<Vec<LlcVulnerability>>,
}

/// Serialize a full bundle.
pub fn bundle_to_string(bundle: &ModelBundle) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "format = corun-bundle");
    let _ = writeln!(out, "version = {FORMAT_VERSION}");
    let _ = writeln!(out, "[profiles]");
    out.push_str(&profiles_to_string(&bundle.profiles));
    let _ = writeln!(out, "[stages]");
    out.push_str(&stages_to_string(&bundle.stages));
    match &bundle.vulnerabilities {
        Some(v) => {
            let _ = writeln!(out, "vulns = {}", v.len());
            for (k, vv) in v.iter().enumerate() {
                let _ = writeln!(out, "[vuln {k}]");
                for (label, knots) in [("cpu", &vv.curve.cpu), ("gpu", &vv.curve.gpu)] {
                    let flat: Vec<f64> = knots.iter().flat_map(|&(d, e)| [d, e]).collect();
                    write_vec(&mut out, &format!("{label}_knots"), &flat);
                }
            }
        }
        None => {
            let _ = writeln!(out, "vulns = none");
        }
    }
    out
}

/// Deserialize a full bundle.
pub fn bundle_from_string(text: &str) -> Result<ModelBundle, PersistError> {
    let mut f = Fields::parse(text);
    check_header(&mut f, "corun-bundle")?;
    // Profiles and stages re-declare their own headers inline.
    check_header(&mut f, "corun-profiles")?;
    let n: usize = f.expect_num("jobs")?;
    let mut profiles = Vec::with_capacity(n);
    for _ in 0..n {
        profiles.push(read_profile(&mut f)?);
    }
    check_header(&mut f, "corun-stages")?;
    let ns: usize = f.expect_num("stages")?;
    let mut stages = Vec::with_capacity(ns);
    for _ in 0..ns {
        stages.push(read_stage(&mut f)?);
    }
    let vulnerabilities = match f.expect("vulns")? {
        "none" => None,
        count => {
            let nv: usize = count
                .parse()
                .map_err(|_| malformed("bad vulnerability count"))?;
            let mut out = Vec::with_capacity(nv);
            for _ in 0..nv {
                let cpu = read_knots(&mut f, "cpu")?;
                let gpu = read_knots(&mut f, "gpu")?;
                out.push(LlcVulnerability {
                    curve: PerDevice::new(cpu, gpu),
                });
            }
            Some(out)
        }
    };
    Ok(ModelBundle {
        profiles,
        stages,
        vulnerabilities,
    })
}

fn read_knots(f: &mut Fields<'_>, label: &str) -> Result<Vec<(f64, f64)>, PersistError> {
    let flat = f.expect_vec(&format!("{label}_knots"))?;
    if flat.len() % 2 != 0 {
        return Err(malformed("odd knot vector"));
    }
    Ok(flat.chunks(2).map(|c| (c[0], c[1])).collect())
}

fn read_device(f: &mut Fields<'_>, label: &str) -> Result<DeviceProfile, PersistError> {
    let time_s = f.expect_vec(&format!("{label}_time"))?;
    let demand = f.expect_vec(&format!("{label}_demand"))?;
    let power = f.expect_vec(&format!("{label}_power"))?;
    if time_s.len() != demand.len() || time_s.len() != power.len() {
        return Err(malformed("profile ladder length mismatch"));
    }
    Ok(DeviceProfile {
        time_s,
        demand_gbps: demand,
        power_w: power,
    })
}

fn read_profile(f: &mut Fields<'_>) -> Result<JobProfile, PersistError> {
    let name = f.expect("name")?.to_owned();
    let cpu = read_device(f, "cpu")?;
    let gpu = read_device(f, "gpu")?;
    Ok(JobProfile {
        name,
        per_device: PerDevice::new(cpu, gpu),
    })
}

/// Read one demand grid, re-checking the `Grid2D` constructor's
/// preconditions so a corrupt cache file comes back as
/// [`PersistError::Malformed`] instead of a panic.
fn read_grid(f: &mut Fields<'_>, label: &str) -> Result<Grid2D, PersistError> {
    let ax_c = f.expect_vec(&format!("{label}_axis_cpu"))?;
    let ax_g = f.expect_vec(&format!("{label}_axis_gpu"))?;
    let vals = f.expect_vec(&format!("{label}_values"))?;
    if vals.len() != ax_c.len() * ax_g.len() {
        return Err(malformed("grid dimension mismatch"));
    }
    for (axis, ax) in [("cpu", &ax_c), ("gpu", &ax_g)] {
        if ax.len() < 2 {
            return Err(malformed(format!(
                "{label} grid {axis} axis needs at least 2 points, got {}",
                ax.len()
            )));
        }
        if !ax.windows(2).all(|w| w[0] < w[1]) {
            return Err(malformed(format!(
                "{label} grid {axis} axis is not strictly increasing"
            )));
        }
    }
    Ok(Grid2D::new(ax_c, ax_g, vals))
}

fn read_stage(f: &mut Fields<'_>) -> Result<Stage, PersistError> {
    let cpu_level: usize = f.expect_num("cpu_level")?;
    let gpu_level: usize = f.expect_num("gpu_level")?;
    let cpu_ghz: f64 = f.expect_num("cpu_ghz")?;
    let gpu_ghz: f64 = f.expect_num("gpu_ghz")?;
    let cpu_grid = read_grid(f, "cpu")?;
    let gpu_grid = read_grid(f, "gpu")?;
    Ok(Stage {
        setting: FreqSetting::new(cpu_level, gpu_level),
        cpu_ghz,
        gpu_ghz,
        surface: DegradationSurface {
            deg: PerDevice::new(cpu_grid, gpu_grid),
        },
    })
}

/// Save a bundle to `path`.
pub fn save_bundle(path: &Path, bundle: &ModelBundle) -> Result<(), PersistError> {
    std::fs::write(path, bundle_to_string(bundle))?;
    Ok(())
}

/// Load a bundle from `path`.
pub fn load_bundle(path: &Path) -> Result<ModelBundle, PersistError> {
    bundle_from_string(&std::fs::read_to_string(path)?)
}

// ---------------------------------------------------------------------------
// file helpers
// ---------------------------------------------------------------------------

/// Save stages to `path`.
pub fn save_stages(path: &Path, stages: &[Stage]) -> Result<(), PersistError> {
    std::fs::write(path, stages_to_string(stages))?;
    Ok(())
}

/// Load stages from `path`.
pub fn load_stages(path: &Path) -> Result<Vec<Stage>, PersistError> {
    stages_from_string(&std::fs::read_to_string(path)?)
}

/// Save profiles to `path`.
pub fn save_profiles(path: &Path, profiles: &[JobProfile]) -> Result<(), PersistError> {
    std::fs::write(path, profiles_to_string(profiles))?;
    Ok(())
}

/// Load profiles from `path`.
pub fn load_profiles(path: &Path) -> Result<Vec<JobProfile>, PersistError> {
    profiles_from_string(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizeConfig};
    use crate::profile::{profile_batch, ProfileMethod};
    use apu_sim::MachineConfig;

    fn sample_stages() -> Vec<Stage> {
        let cfg = MachineConfig::ivy_bridge();
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 3;
        ccfg.micro_duration_s = 1.0;
        characterize(&cfg, &ccfg)
    }

    #[test]
    fn stages_roundtrip() {
        let stages = sample_stages();
        let text = stages_to_string(&stages);
        let back = stages_from_string(&text).expect("roundtrip");
        assert_eq!(stages.len(), back.len());
        for (a, b) in stages.iter().zip(&back) {
            assert_eq!(a.setting, b.setting);
            assert!((a.cpu_ghz - b.cpu_ghz).abs() < 1e-12);
            assert_eq!(a.surface, b.surface);
        }
    }

    #[test]
    fn profiles_roundtrip() {
        let cfg = MachineConfig::ivy_bridge();
        let jobs: Vec<_> = kernels::rodinia_suite(&cfg).into_iter().take(3).collect();
        let profiles = profile_batch(&cfg, &jobs, ProfileMethod::Analytic);
        let text = profiles_to_string(&profiles);
        let back = profiles_from_string(&text).expect("roundtrip");
        assert_eq!(profiles, back);
    }

    #[test]
    fn rejects_wrong_format() {
        let err = stages_from_string("format = bogus\nversion = 1\n").unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)));
    }

    #[test]
    fn rejects_wrong_version() {
        let err = stages_from_string("format = corun-stages\nversion = 99\n").unwrap_err();
        assert!(matches!(err, PersistError::Version(99)));
    }

    #[test]
    fn rejects_truncated_file() {
        let stages = sample_stages();
        let text = stages_to_string(&stages);
        let cut = &text[..text.len() / 2];
        assert!(stages_from_string(cut).is_err());
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let text = "format = corun-stages\nversion = 1\nstages = 1\n[stage 0]\n\
                    cpu_level = 0\ngpu_level = 0\ncpu_ghz = 1.2\ngpu_ghz = 0.35\n\
                    cpu_axis_cpu = 0 1\ncpu_axis_gpu = 0 1\ncpu_values = 1 2 3\n";
        assert!(stages_from_string(text).is_err());
    }

    #[test]
    fn rejects_bad_axes_without_panicking() {
        // Non-increasing axis and a single-point axis: both used to trip
        // Grid2D's constructor assertions; a bad cache file must be an Err.
        for axes in [
            "cpu_axis_cpu = 1 0\ncpu_axis_gpu = 0 1",
            "cpu_axis_cpu = 0\ncpu_axis_gpu = 0 1",
        ] {
            let vals = if axes.contains("= 0\n") {
                "1 2"
            } else {
                "1 2 3 4"
            };
            let text = format!(
                "format = corun-stages\nversion = 1\nstages = 1\n[stage 0]\n\
                 cpu_level = 0\ngpu_level = 0\ncpu_ghz = 1.2\ngpu_ghz = 0.35\n\
                 {axes}\ncpu_values = {vals}\n"
            );
            let err = stages_from_string(&text).unwrap_err();
            assert!(matches!(err, PersistError::Malformed(_)), "{err}");
        }
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("corun_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stages.txt");
        let stages = sample_stages();
        save_stages(&path, &stages).unwrap();
        let back = load_stages(&path).unwrap();
        assert_eq!(stages.len(), back.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bundle_roundtrip_with_vulnerabilities() {
        let cfg = MachineConfig::ivy_bridge();
        let jobs: Vec<_> = kernels::rodinia_suite(&cfg).into_iter().take(2).collect();
        let profiles = profile_batch(&cfg, &jobs, ProfileMethod::Analytic);
        let bundle = ModelBundle {
            profiles,
            stages: sample_stages(),
            vulnerabilities: Some(vec![
                crate::probe::LlcVulnerability::none(),
                crate::probe::LlcVulnerability {
                    curve: apu_sim::PerDevice::new(
                        vec![(2.25, 0.1), (4.5, 0.6), (9.0, 2.2)],
                        vec![(2.25, 0.0), (4.5, 0.1), (9.0, 0.3)],
                    ),
                },
            ]),
        };
        let text = bundle_to_string(&bundle);
        let back = bundle_from_string(&text).expect("roundtrip");
        assert_eq!(bundle, back);
    }

    #[test]
    fn bundle_roundtrip_without_vulnerabilities() {
        let bundle = ModelBundle {
            profiles: vec![],
            stages: sample_stages(),
            vulnerabilities: None,
        };
        let text = bundle_to_string(&bundle);
        let back = bundle_from_string(&text).expect("roundtrip");
        assert_eq!(bundle, back);
    }

    #[test]
    fn predictor_from_loaded_stages_matches() {
        let cfg = MachineConfig::ivy_bridge();
        let stages = sample_stages();
        let text = stages_to_string(&stages);
        let loaded = stages_from_string(&text).unwrap();
        let a = crate::predictor::StagedPredictor::new(&cfg, stages);
        let b = crate::predictor::StagedPredictor::new(&cfg, loaded);
        for (own, co) in [(2.0, 8.0), (9.0, 9.0), (0.5, 3.0)] {
            let da = a.degradation_at(apu_sim::Device::Cpu, own, co, 2.8, 0.9);
            let db = b.degradation_at(apu_sim::Device::Cpu, own, co, 2.8, 0.9);
            assert!((da - db).abs() < 1e-12);
        }
    }
}
