//! Fuzz-style property tests for the persistence format: arbitrary valid
//! data round-trips exactly; arbitrary mutations of a valid file never
//! panic (they either parse to something or error cleanly).

use apu_sim::{FreqSetting, PerDevice};
use perf_model::{
    profiles_from_string, profiles_to_string, stages_from_string, stages_to_string,
    DegradationSurface, DeviceProfile, Grid2D, JobProfile, Stage,
};
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = Grid2D> {
    (2usize..6, 2usize..6).prop_flat_map(|(nc, ng)| {
        let axes = (
            proptest::collection::vec(0.01f64..20.0, nc),
            proptest::collection::vec(0.01f64..20.0, ng),
            proptest::collection::vec(-0.1f64..2.0, nc * ng),
        );
        axes.prop_filter_map("axes must be strictly increasing", |(mut a, mut b, v)| {
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            a.dedup_by(|x, y| (*x - *y).abs() < 1e-6);
            b.dedup_by(|x, y| (*x - *y).abs() < 1e-6);
            if a.len() < 2 || b.len() < 2 {
                return None;
            }
            let v = v[..a.len() * b.len()].to_vec();
            Some(Grid2D::new(a, b, v))
        })
    })
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    (arb_grid(), arb_grid(), 0usize..16, 0usize..10).prop_map(|(c, g, cl, gl)| Stage {
        setting: FreqSetting::new(cl, gl),
        cpu_ghz: 1.2 + cl as f64 * 0.16,
        gpu_ghz: 0.35 + gl as f64 * 0.1,
        surface: DegradationSurface {
            deg: PerDevice::new(c, g),
        },
    })
}

fn arb_profile() -> impl Strategy<Value = JobProfile> {
    ("[a-z]{1,12}", 2usize..20).prop_flat_map(|(name, k)| {
        proptest::collection::vec(0.01f64..500.0, k * 6).prop_map(move |v| {
            let dev = |o: usize| DeviceProfile {
                time_s: v[o * k..(o + 1) * k].to_vec(),
                demand_gbps: v[(o + 1) * k..(o + 2) * k].to_vec(),
                power_w: v[(o + 2) * k..(o + 3) * k].to_vec(),
            };
            JobProfile {
                name: name.clone(),
                per_device: PerDevice::new(dev(0), dev(3)),
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stages_roundtrip_exactly(stages in proptest::collection::vec(arb_stage(), 1..4)) {
        let text = stages_to_string(&stages);
        let back = stages_from_string(&text).expect("roundtrip");
        prop_assert_eq!(stages, back);
    }

    #[test]
    fn profiles_roundtrip_exactly(profiles in proptest::collection::vec(arb_profile(), 1..4)) {
        let text = profiles_to_string(&profiles);
        let back = profiles_from_string(&text).expect("roundtrip");
        prop_assert_eq!(profiles, back);
    }

    #[test]
    fn truncation_never_panics(stages in proptest::collection::vec(arb_stage(), 1..3),
                               cut in 0.0f64..1.0) {
        let text = stages_to_string(&stages);
        let n = (text.len() as f64 * cut) as usize;
        let _ = stages_from_string(&text[..n]); // must not panic
    }

    #[test]
    fn line_deletion_never_panics(stages in proptest::collection::vec(arb_stage(), 1..3),
                                  victim in 0usize..200) {
        let text = stages_to_string(&stages);
        let lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() { return Ok(()); }
        let k = victim % lines.len();
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != k)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let _ = stages_from_string(&mutated); // must not panic
    }

    #[test]
    fn garbage_never_panics(garbage in "[ -~\n]{0,400}") {
        let _ = stages_from_string(&garbage);
        let _ = profiles_from_string(&garbage);
    }
}
