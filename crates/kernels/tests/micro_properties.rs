//! Property tests for the micro-benchmark synthesizer: any reachable target
//! bandwidth is hit within tolerance, at any frequency setting, on both
//! machine presets.

use apu_sim::{Device, FreqSetting, MachineConfig};
use kernels::MicroKernel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_hits_reachable_targets(
        target in 0.5f64..10.5,
        duration in 1.0f64..8.0,
        cpu_level in 0usize..16,
        gpu_level in 0usize..10,
        on_gpu in any::<bool>(),
    ) {
        let cfg = MachineConfig::ivy_bridge();
        let setting = FreqSetting::new(cpu_level, gpu_level);
        let device = if on_gpu { Device::Gpu } else { Device::Cpu };
        let dev = cfg.device(device);
        let f = cfg.freqs.ghz(device, setting);
        let bw = dev.solo_bandwidth(f, cfg.f_max(device));
        let reachable = target.min(bw * 0.999);

        let mk = MicroKernel::for_bandwidth(&cfg, device, setting, reachable, duration);
        let job = mk.to_job(&cfg);
        let d = job.avg_demand(dev, device, f, cfg.f_max(device));
        // Within 10% (integer i_max rounding dominates at short durations).
        prop_assert!(
            (d - reachable).abs() <= reachable.max(0.8) * 0.10 + 0.05,
            "target {reachable} got {d} at {setting} on {device}"
        );
        let t = job.solo_time(dev, device, f, cfg.f_max(device));
        prop_assert!((t - duration).abs() / duration < 0.25, "duration {t} vs {duration}");
    }

    #[test]
    fn pressure_monotone_in_target(a in 0.5f64..5.0, delta in 0.5f64..5.0) {
        let cfg = MachineConfig::ivy_bridge();
        let s = cfg.freqs.max_setting();
        let lo = MicroKernel::for_bandwidth(&cfg, Device::Gpu, s, a, 4.0).to_job(&cfg);
        let hi = MicroKernel::for_bandwidth(&cfg, Device::Gpu, s, a + delta, 4.0).to_job(&cfg);
        prop_assert!(hi.max_llc_pressure() + 1e-9 >= lo.max_llc_pressure());
    }

    #[test]
    fn kaveri_targets_also_work(target in 0.5f64..9.0) {
        let cfg = MachineConfig::kaveri();
        let s = cfg.freqs.max_setting();
        let mk = MicroKernel::for_bandwidth(&cfg, Device::Gpu, s, target, 4.0);
        let job = mk.to_job(&cfg);
        let f = cfg.freqs.ghz(Device::Gpu, s);
        let d = job.avg_demand(&cfg.gpu, Device::Gpu, f, cfg.f_max(Device::Gpu));
        prop_assert!((d - target).abs() <= target.max(0.8) * 0.12 + 0.05,
            "target {target} got {d}");
    }
}
