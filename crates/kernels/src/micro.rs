//! The controllable micro-benchmark of the paper's Figure 4.
//!
//! The paper's stressor is a three-step OpenCL kernel: each work-item reads
//! from two input arrays (memory), runs `j_max` iterations of register-only
//! arithmetic (compute), and writes one output element (memory). Array size
//! and `j_max` dial the kernel's DRAM demand anywhere from ~0 up to the
//! device's ~11 GB/s peak.
//!
//! Here the same knobs are kept ([`MicroParams`]: `i_max`, `j_max`, array
//! size) and translated into the simulator's `(flops, bytes)` work units.
//! [`MicroKernel::for_bandwidth`] solves the inverse problem: given a target
//! solo DRAM demand at a frequency setting, produce a kernel that hits it.

use apu_sim::{Device, FreqSetting, JobSpec, MachineConfig, PhaseWork};
use serde::{Deserialize, Serialize};

/// Bytes moved per work-item per outer iteration: two 4-byte loads plus one
/// 4-byte store (Figure 4, steps 1 and 3).
pub const BYTES_PER_ITEM_ITER: f64 = 12.0;

/// Flops per inner-loop iteration: one add and one modulo (step 2).
pub const FLOPS_PER_INNER_ITER: f64 = 2.0;

/// Fixed per-item flops outside the inner loop (address math, final
/// combine on line 16 of Figure 4).
pub const FLOPS_PER_ITEM_FIXED: f64 = 3.0;

/// Raw knobs of the Figure-4 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroParams {
    /// Number of work-items (one per array element).
    pub items: u64,
    /// Outer-loop trip count (`i_max`).
    pub i_max: u32,
    /// Inner arithmetic loop trip count (`j_max`).
    pub j_max: f64,
}

impl MicroParams {
    /// Total DRAM traffic in GB. The arrays are sized to defeat the LLC
    /// (the paper: "large enough so that no one single array can stay in
    /// LLC"), so every access goes to memory.
    pub fn total_bytes_gb(&self) -> f64 {
        self.items as f64 * self.i_max as f64 * BYTES_PER_ITEM_ITER / 1e9
    }

    /// Total compute in GFLOP.
    pub fn total_flops_g(&self) -> f64 {
        self.items as f64
            * self.i_max as f64
            * (self.j_max * FLOPS_PER_INNER_ITER + FLOPS_PER_ITEM_FIXED)
            / 1e9
    }
}

/// A synthesized instance of the micro-benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroKernel {
    /// The Figure-4 knobs this instance corresponds to.
    pub params: MicroParams,
    /// The compute efficiency assumed on each device (the kernel is simple
    /// streaming code, so it runs near peak on both).
    pub cpu_eff: f64,
    /// GPU compute efficiency.
    pub gpu_eff: f64,
}

impl MicroKernel {
    /// Default efficiencies for the trivially-parallel stressor.
    pub const CPU_EFF: f64 = 0.92;
    /// GPU efficiency of the stressor.
    pub const GPU_EFF: f64 = 0.90;

    /// Build a kernel directly from Figure-4 knobs.
    pub fn from_params(params: MicroParams) -> Self {
        MicroKernel {
            params,
            cpu_eff: Self::CPU_EFF,
            gpu_eff: Self::GPU_EFF,
        }
    }

    /// Synthesize a kernel whose *solo* DRAM demand on `device` at `setting`
    /// is `target_bw_gbps`, with a solo duration of roughly `duration_s`.
    ///
    /// Targets at or above the device's effective bandwidth saturate to a
    /// pure-streaming kernel (`j_max = 0`). A target of 0 produces a pure
    /// compute kernel.
    pub fn for_bandwidth(
        cfg: &MachineConfig,
        device: Device,
        setting: FreqSetting,
        target_bw_gbps: f64,
        duration_s: f64,
    ) -> Self {
        assert!(target_bw_gbps >= 0.0 && duration_s > 0.0);
        let dev = cfg.device(device);
        let f = cfg.freqs.ghz(device, setting);
        let f_max = cfg.f_max(device);
        let bw = dev.solo_bandwidth(f, f_max);
        let comp_rate = dev.compute_rate(f)
            * match device {
                Device::Cpu => Self::CPU_EFF,
                Device::Gpu => Self::GPU_EFF,
            };
        let ov = 0.2;

        // Total traffic to sustain the target for the whole duration.
        let bytes_gb = target_bw_gbps.min(bw) * duration_s;
        let tm = bytes_gb / bw;

        // Solve T = combine(tc, tm) = duration for tc.
        let tc = if tm <= duration_s / (1.0 + ov) {
            // compute-bound branch
            duration_s - ov * tm
        } else {
            // memory-bound branch
            ((duration_s - tm) / ov).max(0.0)
        };
        let flops_g = tc * comp_rate;

        // Back out Figure-4 knobs: size the arrays so at least ~8 outer
        // iterations carry the traffic (keeps the integer i_max rounding
        // error small even for tiny budgets) while staying far beyond the
        // LLC, then derive i_max from traffic and j_max from arithmetic.
        let items: u64 = ((bytes_gb / (8.0 * BYTES_PER_ITEM_ITER / 1e9)) as u64)
            .clamp(4 * 1024 * 1024, 32 * 1024 * 1024);
        let per_iter_gb = items as f64 * BYTES_PER_ITEM_ITER / 1e9;
        let i_max = if bytes_gb <= 0.0 {
            1
        } else {
            (bytes_gb / per_iter_gb).round().max(1.0) as u32
        };
        let total_iters = items as f64 * i_max as f64;
        let j_max =
            ((flops_g * 1e9 / total_iters - FLOPS_PER_ITEM_FIXED) / FLOPS_PER_INNER_ITER).max(0.0);

        MicroKernel {
            params: MicroParams {
                items,
                i_max,
                j_max,
            },
            cpu_eff: Self::CPU_EFF,
            gpu_eff: Self::GPU_EFF,
        }
    }

    /// Lower this kernel to a simulator [`JobSpec`].
    ///
    /// The stressor streams its arrays, so it is LLC-insensitive but exerts
    /// eviction pressure proportional to its traffic intensity.
    pub fn to_job(&self, cfg: &MachineConfig) -> JobSpec {
        let bytes = self.params.total_bytes_gb();
        let flops = self.params.total_flops_g();
        // Pressure scales with how hard the kernel drives DRAM relative to
        // the per-device peak.
        let demand_scale = (bytes / (bytes + flops / 40.0 + 1e-9)).clamp(0.0, 1.0); // crude intensity proxy
        let _ = demand_scale;
        let name = format!(
            "micro(i={},j={:.0},{}GB)",
            self.params.i_max,
            self.params.j_max,
            bytes.round()
        );
        JobSpec::plain(
            name,
            vec![PhaseWork {
                flops,
                bytes,
                cpu_eff: self.cpu_eff,
                gpu_eff: self.gpu_eff,
                llc_footprint_mib: 384.0, // three 128 MiB arrays: streams past LLC
                llc_sensitivity: 0.0,
                llc_pressure: self.pressure(cfg),
                llc_miss_bw_gbps: 0.0,
                overlap: 0.2,
            }],
        )
    }

    /// LLC eviction pressure this kernel exerts, derived from its maximum
    /// per-device demand intensity.
    fn pressure(&self, cfg: &MachineConfig) -> f64 {
        let bytes = self.params.total_bytes_gb();
        if bytes <= 0.0 {
            return 0.0;
        }
        let s = cfg.freqs.max_setting();
        let job_probe = JobSpec::plain(
            "probe",
            vec![PhaseWork {
                flops: self.params.total_flops_g(),
                bytes,
                cpu_eff: self.cpu_eff,
                gpu_eff: self.gpu_eff,
                llc_footprint_mib: 384.0,
                llc_sensitivity: 0.0,
                llc_pressure: 0.0,
                llc_miss_bw_gbps: 0.0,
                overlap: 0.2,
            }],
        );
        let d = Device::ALL
            .iter()
            .map(|&dev| {
                job_probe.avg_demand(cfg.device(dev), dev, cfg.freqs.ghz(dev, s), cfg.f_max(dev))
            })
            .fold(0.0, f64::max);
        (0.95 * d / 11.0).clamp(0.0, 0.95)
    }
}

/// The 11 evenly spaced bandwidth levels (0..=11 GB/s) the paper uses to
/// cover the degradation space.
pub fn paper_bandwidth_levels() -> Vec<f64> {
    (0..11).map(|i| i as f64 * 1.1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::run_solo;

    fn cfg() -> MachineConfig {
        MachineConfig::ivy_bridge()
    }

    #[test]
    fn params_arithmetic() {
        let p = MicroParams {
            items: 1_000_000,
            i_max: 10,
            j_max: 5.0,
        };
        assert!((p.total_bytes_gb() - 0.12).abs() < 1e-9);
        assert!((p.total_flops_g() - 0.13).abs() < 1e-9);
    }

    #[test]
    fn paper_levels_span_zero_to_eleven() {
        let l = paper_bandwidth_levels();
        assert_eq!(l.len(), 11);
        assert_eq!(l[0], 0.0);
        assert!((l[10] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn for_bandwidth_hits_target_on_cpu() {
        let cfg = cfg();
        let s = cfg.freqs.max_setting();
        for target in [2.0, 5.0, 8.0, 10.5] {
            let mk = MicroKernel::for_bandwidth(&cfg, Device::Cpu, s, target, 4.0);
            let job = mk.to_job(&cfg);
            let d = job.avg_demand(&cfg.cpu, Device::Cpu, 3.6, 3.6);
            assert!(
                (d - target).abs() / target < 0.08,
                "target {target} got {d}"
            );
        }
    }

    #[test]
    fn for_bandwidth_hits_target_on_gpu() {
        let cfg = cfg();
        let s = cfg.freqs.max_setting();
        for target in [1.0, 4.0, 7.0, 11.0] {
            let mk = MicroKernel::for_bandwidth(&cfg, Device::Gpu, s, target, 4.0);
            let job = mk.to_job(&cfg);
            let d = job.avg_demand(&cfg.gpu, Device::Gpu, 1.25, 1.25);
            assert!(
                (d - target).abs() / target.max(1.0) < 0.08,
                "target {target} got {d}"
            );
        }
    }

    #[test]
    fn for_bandwidth_duration_roughly_matches() {
        let cfg = cfg();
        let s = cfg.freqs.max_setting();
        let mk = MicroKernel::for_bandwidth(&cfg, Device::Cpu, s, 6.0, 5.0);
        let out = run_solo(&cfg, &mk.to_job(&cfg), Device::Cpu, s).unwrap();
        assert!((out.time_s - 5.0).abs() < 0.5, "got {}", out.time_s);
    }

    #[test]
    fn zero_target_is_pure_compute() {
        let cfg = cfg();
        let s = cfg.freqs.max_setting();
        let mk = MicroKernel::for_bandwidth(&cfg, Device::Gpu, s, 0.0, 3.0);
        let job = mk.to_job(&cfg);
        // one outer iteration of traffic remains (i_max >= 1) but demand ~0
        let d = job.avg_demand(&cfg.gpu, Device::Gpu, 1.25, 1.25);
        assert!(d < 0.3, "near-zero demand expected, got {d}");
    }

    #[test]
    fn saturating_target_clamps_to_device_peak() {
        let cfg = cfg();
        let s = cfg.freqs.max_setting();
        let mk = MicroKernel::for_bandwidth(&cfg, Device::Cpu, s, 25.0, 4.0);
        let job = mk.to_job(&cfg);
        let d = job.avg_demand(&cfg.cpu, Device::Cpu, 3.6, 3.6);
        assert!(d <= 11.0 + 1e-6);
        assert!(d > 9.0, "should run near peak, got {d}");
    }

    #[test]
    fn lower_frequency_lowers_achievable_demand() {
        let cfg = cfg();
        let lo = FreqSetting::new(0, 0);
        let mk = MicroKernel::for_bandwidth(&cfg, Device::Cpu, lo, 11.0, 4.0);
        let job = mk.to_job(&cfg);
        let f_lo = cfg.freqs.ghz(Device::Cpu, lo);
        let d = job.avg_demand(&cfg.cpu, Device::Cpu, f_lo, 3.6);
        // At the lowest CPU level, effective bandwidth is ~73% of peak.
        assert!(d < 9.0, "demand at low freq must be below peak, got {d}");
        assert!(d > 6.0);
    }

    #[test]
    fn pressure_tracks_intensity() {
        let cfg = cfg();
        let s = cfg.freqs.max_setting();
        let heavy = MicroKernel::for_bandwidth(&cfg, Device::Gpu, s, 10.0, 4.0).to_job(&cfg);
        let light = MicroKernel::for_bandwidth(&cfg, Device::Gpu, s, 1.0, 4.0).to_job(&cfg);
        assert!(heavy.max_llc_pressure() > light.max_llc_pressure());
        assert!(heavy.max_llc_pressure() <= 0.95);
    }
}
