//! Arrival-trace generators for online-scheduling studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One arrival: job index and time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Job index into the workload.
    pub job: usize,
    /// Arrival time, seconds.
    pub at_s: f64,
}

/// All jobs at t = 0 (the paper's batch setting).
pub fn batch(n: usize) -> Vec<ArrivalSpec> {
    (0..n).map(|job| ArrivalSpec { job, at_s: 0.0 }).collect()
}

/// Poisson arrivals: exponential inter-arrival gaps with the given mean,
/// capped at `max_gap_s` to keep traces bounded.
pub fn poisson(n: usize, mean_gap_s: f64, max_gap_s: f64, seed: u64) -> Vec<ArrivalSpec> {
    assert!(mean_gap_s > 0.0 && max_gap_s > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|job| {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += (-mean_gap_s * u.ln()).min(max_gap_s);
            ArrivalSpec { job, at_s: t }
        })
        .collect()
}

/// Bursty arrivals: `bursts` waves separated by `gap_s`, jobs inside a wave
/// arriving within `spread_s` of its start.
pub fn bursty(n: usize, bursts: usize, gap_s: f64, spread_s: f64, seed: u64) -> Vec<ArrivalSpec> {
    assert!(bursts >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|job| {
            let wave = job % bursts;
            let base = wave as f64 * gap_s;
            ArrivalSpec {
                job,
                at_s: base + rng.gen_range(0.0..spread_s.max(1e-9)),
            }
        })
        .collect()
}

/// Staircase arrivals: one job every `step_s` seconds, deterministic.
pub fn staircase(n: usize, step_s: f64) -> Vec<ArrivalSpec> {
    (0..n)
        .map(|job| ArrivalSpec {
            job,
            at_s: job as f64 * step_s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_all_zero() {
        let a = batch(5);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|x| x.at_s == 0.0));
        assert_eq!(a[3].job, 3);
    }

    #[test]
    fn poisson_monotone_and_bounded() {
        let a = poisson(50, 10.0, 40.0, 3);
        assert_eq!(a.len(), 50);
        for w in a.windows(2) {
            let gap = w[1].at_s - w[0].at_s;
            assert!((0.0..=40.0 + 1e-9).contains(&gap));
        }
        // mean gap roughly right (loose band; 50 samples)
        let mean = a.last().unwrap().at_s / 50.0;
        assert!((4.0..25.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        assert_eq!(poisson(10, 5.0, 20.0, 1), poisson(10, 5.0, 20.0, 1));
        assert_ne!(poisson(10, 5.0, 20.0, 1), poisson(10, 5.0, 20.0, 2));
    }

    #[test]
    fn bursty_forms_waves() {
        let a = bursty(12, 3, 100.0, 5.0, 7);
        // wave of job 0, 3, 6, 9 near t=0; wave of 1,4,7,10 near 100; ...
        for x in &a {
            let wave = x.job % 3;
            let base = wave as f64 * 100.0;
            assert!(x.at_s >= base && x.at_s <= base + 5.0);
        }
    }

    #[test]
    fn staircase_even_spacing() {
        let a = staircase(4, 2.5);
        assert_eq!(a[0].at_s, 0.0);
        assert_eq!(a[3].at_s, 7.5);
    }
}
