//! # kernels — synthetic OpenCL-like workloads
//!
//! Two workload families used throughout the reproduction of
//! *"Co-Run Scheduling with Power Cap on Integrated CPU-GPU Systems"*:
//!
//! * [`micro`] — the paper's Figure-4 micro-benchmark: a controllable
//!   memory-system stressor whose DRAM demand can be dialed from 0 to the
//!   device peak. Used to characterize the co-run degradation space.
//! * [`rodinia`] — eight multi-phase programs calibrated so that their
//!   standalone CPU/GPU run times at the highest frequency match the
//!   paper's Table I.
//! * [`workload`] — batch builders for the paper's 8- and 16-instance
//!   studies and the Section III example.
//! * [`synthetic`] — parameterized random program generation.
//! * [`traces`] — arrival-trace generators for online studies.

pub mod micro;
pub mod rodinia;
pub mod synthetic;
pub mod traces;
pub mod workload;

pub use micro::{paper_bandwidth_levels, MicroKernel, MicroParams};
pub use rodinia::{
    build_program, by_name, program_defs, rodinia_suite, with_input_scale, LlcProfile, ProgramDef,
};
pub use synthetic::{synthetic_batch, synthetic_program, SyntheticSpace};
pub use traces::{batch as batch_arrivals, bursty, poisson, staircase, ArrivalSpec};
pub use workload::{random_batch, rodinia16, rodinia8, section3_four, Workload};
