//! Workload (job batch) construction for the paper's experiments.

use crate::rodinia::{rodinia_suite, with_input_scale};
use apu_sim::{JobSpec, MachineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A batch of independent jobs to co-schedule, with stable indices.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The jobs; a job's index in this vector is its id everywhere else.
    pub jobs: Vec<JobSpec>,
    /// Human-readable label ("rodinia-8", "rodinia-16", ...).
    pub label: String,
}

impl Workload {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Job names in index order.
    pub fn names(&self) -> Vec<&str> {
        self.jobs.iter().map(|j| j.name.as_str()).collect()
    }
}

/// The paper's 8-instance study: one instance of each Rodinia program
/// (Figure 10).
pub fn rodinia8(cfg: &MachineConfig) -> Workload {
    Workload {
        jobs: rodinia_suite(cfg),
        label: "rodinia-8".into(),
    }
}

/// The paper's 16-instance scalability study: two instances of each program
/// with different inputs (Figure 11). Input scales are drawn
/// deterministically from `seed` in `[0.8, 1.25]`.
pub fn rodinia16(cfg: &MachineConfig, seed: u64) -> Workload {
    let base = rodinia_suite(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs = Vec::with_capacity(16);
    for j in &base {
        jobs.push(j.clone());
        let scale = rng.gen_range(0.8..1.25);
        jobs.push(with_input_scale(j, scale));
    }
    Workload {
        jobs,
        label: "rodinia-16".into(),
    }
}

/// The four-program example of the paper's Section III: streamcluster, cfd,
/// dwt2d and hotspot.
pub fn section3_four(cfg: &MachineConfig) -> Workload {
    let names = ["streamcluster", "cfd", "dwt2d", "hotspot"];
    let jobs = names
        .iter()
        .map(|n| crate::rodinia::by_name(cfg, n).expect("known program"))
        .collect();
    Workload {
        jobs,
        label: "section3-4".into(),
    }
}

/// A randomized subset of `n` jobs drawn (with replacement, varied inputs)
/// from the suite — handy for stress and property tests.
pub fn random_batch(cfg: &MachineConfig, n: usize, seed: u64) -> Workload {
    let base = rodinia_suite(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = (0..n)
        .map(|_| {
            let j = &base[rng.gen_range(0..base.len())];
            let scale = rng.gen_range(0.7..1.4);
            with_input_scale(j, scale)
        })
        .collect();
    Workload {
        jobs,
        label: format!("random-{n}-s{seed}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::ivy_bridge()
    }

    #[test]
    fn rodinia8_has_one_of_each() {
        let w = rodinia8(&cfg());
        assert_eq!(w.len(), 8);
        let mut names = w.names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "all names distinct");
    }

    #[test]
    fn rodinia16_has_two_of_each() {
        let w = rodinia16(&cfg(), 7);
        assert_eq!(w.len(), 16);
        let base_count = w.jobs.iter().filter(|j| !j.name.contains('#')).count();
        assert_eq!(base_count, 8);
    }

    #[test]
    fn rodinia16_deterministic_per_seed() {
        let cfg = cfg();
        let a = rodinia16(&cfg, 42);
        let b = rodinia16(&cfg, 42);
        let c = rodinia16(&cfg, 43);
        assert_eq!(a.names(), b.names());
        assert_ne!(
            a.jobs
                .iter()
                .map(apu_sim::JobSpec::total_flops)
                .collect::<Vec<_>>(),
            c.jobs
                .iter()
                .map(apu_sim::JobSpec::total_flops)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn section3_matches_paper_example() {
        let w = section3_four(&cfg());
        assert_eq!(w.names(), vec!["streamcluster", "cfd", "dwt2d", "hotspot"]);
    }

    #[test]
    fn random_batch_sized_and_seeded() {
        let cfg = cfg();
        let a = random_batch(&cfg, 5, 1);
        let b = random_batch(&cfg, 5, 1);
        assert_eq!(a.len(), 5);
        assert_eq!(a.names(), b.names());
        assert!(!a.is_empty());
    }
}
