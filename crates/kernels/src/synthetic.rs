//! Parameterized synthetic program generation beyond the calibrated
//! Rodinia suite — for stress tests, fuzzing, and exploring workload
//! spaces the paper's eight programs do not cover.

use apu_sim::{JobSpec, MachineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Ranges a generated program's character is drawn from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticSpace {
    /// Target standalone time on the preferred device at max frequency,
    /// seconds.
    pub time_s: (f64, f64),
    /// Memory-time share of the total (0 = pure compute, ~0.85 = streaming).
    pub mem_share: (f64, f64),
    /// Ratio of the slower device's time to the faster one's.
    pub device_skew: (f64, f64),
    /// Probability the program prefers the CPU.
    pub cpu_pref_prob: f64,
    /// Probability the program is LLC-fragile (dwt2d-like).
    pub llc_fragile_prob: f64,
    /// Phase count range.
    pub phases: (usize, usize),
}

impl Default for SyntheticSpace {
    fn default() -> Self {
        SyntheticSpace {
            time_s: (8.0, 70.0),
            mem_share: (0.05, 0.8),
            device_skew: (1.1, 2.8),
            cpu_pref_prob: 0.2,
            llc_fragile_prob: 0.15,
            phases: (2, 4),
        }
    }
}

/// Generate one synthetic program.
pub fn synthetic_program(cfg: &MachineConfig, space: &SyntheticSpace, seed: u64) -> JobSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let t_fast = rng.gen_range(space.time_s.0..space.time_s.1);
    let skew = rng.gen_range(space.device_skew.0..space.device_skew.1);
    let cpu_pref = rng.gen_bool(space.cpu_pref_prob);
    let (t_cpu, t_gpu) = if cpu_pref {
        (t_fast, t_fast * skew)
    } else {
        (t_fast * skew, t_fast)
    };
    let mem_share = rng.gen_range(space.mem_share.0..space.mem_share.1);
    let fragile = rng.gen_bool(space.llc_fragile_prob);
    let n_phases = rng.gen_range(space.phases.0..=space.phases.1);

    // Memory seconds at peak bandwidth: bounded so per-phase memory floors
    // stay below both device time budgets (calibratability).
    let tm = (mem_share * t_fast).min(0.8 * t_cpu.min(t_gpu));

    // Random-ish but normalized per-phase splits.
    let mut tc_f: Vec<f64> = (0..n_phases).map(|_| rng.gen_range(0.5..1.5)).collect();
    let mut tm_f: Vec<f64> = (0..n_phases)
        .map(|i| 0.6 * tc_f[i] + rng.gen_range(0.2..0.8))
        .collect();
    let sc: f64 = tc_f.iter().sum();
    let sm: f64 = tm_f.iter().sum();
    tc_f.iter_mut().for_each(|v| *v /= sc);
    tm_f.iter_mut().for_each(|v| *v /= sm);

    let demand_proxy = tm * 11.0 / t_fast;
    let def = crate::rodinia::ProgramDef {
        name: "synthetic",
        t_cpu_s: t_cpu,
        t_gpu_s: t_gpu,
        tm_s: tm,
        splits: tc_f.into_iter().zip(tm_f).collect(),
        llc: if fragile {
            crate::rodinia::LlcProfile {
                footprint_mib: rng.gen_range(2.0..4.0),
                sensitivity: rng.gen_range(6.0..14.0),
                pressure: 0.15,
                miss_bw_gbps: 4.0,
            }
        } else {
            crate::rodinia::LlcProfile {
                footprint_mib: rng.gen_range(6.0..96.0),
                sensitivity: rng.gen_range(0.0..1.2),
                pressure: (0.95 * demand_proxy / 11.0).clamp(0.05, 0.9),
                miss_bw_gbps: 5.0,
            }
        },
        jitter: (
            rng.gen_range(0.03..0.18),
            rng.gen_range(6.0..25.0),
            rng.gen_range(0.0..std::f64::consts::TAU),
        ),
        host_setup_s: rng.gen_range(0.1..0.5),
    };
    let mut job = crate::rodinia::build_program(cfg, &def);
    job.name = format!("syn{seed:04}");
    job
}

/// A batch of `n` synthetic programs.
pub fn synthetic_batch(
    cfg: &MachineConfig,
    space: &SyntheticSpace,
    n: usize,
    seed: u64,
) -> Vec<JobSpec> {
    (0..n)
        .map(|k| synthetic_program(cfg, space, seed.wrapping_mul(1000).wrapping_add(k as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::Device;

    #[test]
    fn generated_program_is_calibrated() {
        let cfg = MachineConfig::ivy_bridge();
        let space = SyntheticSpace::default();
        for seed in 0..20 {
            let job = synthetic_program(&cfg, &space, seed);
            let t_cpu = job.solo_time(&cfg.cpu, Device::Cpu, 3.6, 3.6);
            let t_gpu = job.solo_time(&cfg.gpu, Device::Gpu, 1.25, 1.25);
            assert!(t_cpu > 5.0 && t_cpu < 250.0, "seed {seed}: cpu {t_cpu}");
            assert!(t_gpu > 5.0 && t_gpu < 250.0, "seed {seed}: gpu {t_gpu}");
            for p in &job.phases {
                assert!(p.cpu_eff > 0.0 && p.cpu_eff <= 1.0);
                assert!(p.gpu_eff > 0.0 && p.gpu_eff <= 1.0);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MachineConfig::ivy_bridge();
        let space = SyntheticSpace::default();
        let a = synthetic_program(&cfg, &space, 7);
        let b = synthetic_program(&cfg, &space, 7);
        let c = synthetic_program(&cfg, &space, 8);
        assert_eq!(a, b);
        assert_ne!(a.total_flops(), c.total_flops());
    }

    #[test]
    fn batch_sizes_and_names() {
        let cfg = MachineConfig::ivy_bridge();
        let jobs = synthetic_batch(&cfg, &SyntheticSpace::default(), 6, 99);
        assert_eq!(jobs.len(), 6);
        let names: std::collections::HashSet<_> = jobs.iter().map(|j| &j.name).collect();
        assert_eq!(names.len(), 6, "names must be unique");
    }

    #[test]
    fn space_produces_some_cpu_preferred_jobs() {
        let cfg = MachineConfig::ivy_bridge();
        let space = SyntheticSpace {
            cpu_pref_prob: 1.0,
            ..Default::default()
        };
        let job = synthetic_program(&cfg, &space, 3);
        let t_cpu = job.solo_time(&cfg.cpu, Device::Cpu, 3.6, 3.6);
        let t_gpu = job.solo_time(&cfg.gpu, Device::Gpu, 1.25, 1.25);
        assert!(
            t_cpu < t_gpu,
            "cpu_pref_prob=1 must yield CPU-preferred jobs"
        );
    }

    #[test]
    fn works_on_the_kaveri_preset_too() {
        let cfg = MachineConfig::kaveri();
        let job = synthetic_program(&cfg, &SyntheticSpace::default(), 11);
        let t = job.solo_time(
            &cfg.gpu,
            Device::Gpu,
            cfg.f_max(Device::Gpu),
            cfg.f_max(Device::Gpu),
        );
        assert!(t > 1.0);
    }
}
