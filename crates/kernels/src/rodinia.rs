//! Synthetic stand-ins for the eight Rodinia OpenCL programs the paper
//! evaluates: streamcluster, cfd, dwt2d, hotspot, srad, lud, leukocyte and
//! heartwall.
//!
//! Each program is a multi-phase [`JobSpec`] calibrated so its standalone
//! run time at the highest frequency matches the paper's Table I on both
//! devices. Its memory character (DRAM seconds, LLC footprint/sensitivity/
//! pressure) is chosen to match the program's published behaviour:
//! streamcluster/cfd/srad stream heavily, lud and leukocyte are
//! compute-bound, and dwt2d is cache-resident and extremely sensitive to a
//! streaming co-runner (the 81%-slowdown example of the paper's
//! Section III).
//!
//! Calibration works backwards from times: DRAM traffic comes from the
//! chosen "memory seconds at peak bandwidth" (identical on both devices —
//! same data, same DRAM), and per-device compute efficiencies are then
//! bisected until the analytic solo time hits the Table I target to within
//! a tenth of a percent.

use apu_sim::{Device, JobSpec, MachineConfig, PhaseWork};
use serde::{Deserialize, Serialize};

/// Overlap coefficient shared by all calibrated programs.
pub const OVERLAP: f64 = 0.2;

/// LLC behaviour of one program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlcProfile {
    /// Working-set size, MiB.
    pub footprint_mib: f64,
    /// Traffic-inflation coefficient under eviction.
    pub sensitivity: f64,
    /// Eviction pressure exerted on the co-runner, `[0,1]`.
    pub pressure: f64,
    /// Effective bandwidth of thrash-induced misses, GB/s (0 = device peak).
    pub miss_bw_gbps: f64,
}

/// Declarative definition of one calibrated program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramDef {
    /// Benchmark name.
    pub name: &'static str,
    /// Target standalone CPU time at max frequency (paper Table I), seconds.
    pub t_cpu_s: f64,
    /// Target standalone GPU time at max frequency (paper Table I), seconds.
    pub t_gpu_s: f64,
    /// DRAM-access seconds at peak bandwidth (identical on both devices).
    pub tm_s: f64,
    /// Per-phase `(compute_fraction, memory_fraction)`; each column sums to 1.
    pub splits: Vec<(f64, f64)>,
    /// LLC behaviour.
    pub llc: LlcProfile,
    /// Demand jitter: (relative amplitude, period seconds, phase radians).
    pub jitter: (f64, f64, f64),
    /// Host-side serial setup, seconds.
    pub host_setup_s: f64,
}

/// The eight programs with their Table I targets and characters.
pub fn program_defs() -> Vec<ProgramDef> {
    vec![
        ProgramDef {
            name: "streamcluster",
            t_cpu_s: 59.71,
            t_gpu_s: 23.72,
            tm_s: 18.0,
            splits: vec![(0.42, 0.36), (0.30, 0.38), (0.28, 0.26)],
            llc: LlcProfile {
                footprint_mib: 96.0,
                sensitivity: 0.0,
                pressure: 0.90,
                miss_bw_gbps: 0.0,
            },
            jitter: (0.16, 18.0, 0.3),
            host_setup_s: 0.3,
        },
        ProgramDef {
            name: "cfd",
            t_cpu_s: 49.69,
            t_gpu_s: 26.32,
            tm_s: 17.0,
            splits: vec![(0.50, 0.40), (0.25, 0.38), (0.25, 0.22)],
            llc: LlcProfile {
                footprint_mib: 48.0,
                sensitivity: 0.3,
                pressure: 0.80,
                miss_bw_gbps: 5.5,
            },
            jitter: (0.20, 23.0, 1.1),
            host_setup_s: 0.4,
        },
        ProgramDef {
            name: "dwt2d",
            t_cpu_s: 24.37,
            t_gpu_s: 61.66,
            tm_s: 2.2,
            splits: vec![(0.50, 0.30), (0.28, 0.45), (0.22, 0.25)],
            llc: LlcProfile {
                footprint_mib: 3.0,
                sensitivity: 15.0,
                pressure: 0.15,
                miss_bw_gbps: 4.0,
            },
            jitter: (0.12, 9.0, 2.0),
            host_setup_s: 0.2,
        },
        ProgramDef {
            name: "hotspot",
            t_cpu_s: 70.24,
            t_gpu_s: 28.52,
            tm_s: 6.0,
            splits: vec![(0.40, 0.28), (0.27, 0.44), (0.33, 0.28)],
            llc: LlcProfile {
                footprint_mib: 6.0,
                sensitivity: 1.2,
                pressure: 0.15,
                miss_bw_gbps: 5.0,
            },
            jitter: (0.10, 14.0, 0.0),
            host_setup_s: 0.3,
        },
        ProgramDef {
            name: "srad",
            t_cpu_s: 51.39,
            t_gpu_s: 23.71,
            tm_s: 15.0,
            splits: vec![(0.48, 0.38), (0.26, 0.40), (0.26, 0.22)],
            llc: LlcProfile {
                footprint_mib: 32.0,
                sensitivity: 0.4,
                pressure: 0.75,
                miss_bw_gbps: 5.5,
            },
            jitter: (0.18, 16.0, 0.7),
            host_setup_s: 0.3,
        },
        ProgramDef {
            name: "lud",
            t_cpu_s: 27.76,
            t_gpu_s: 24.83,
            tm_s: 3.5,
            splits: vec![(0.55, 0.28), (0.22, 0.48), (0.23, 0.24)],
            llc: LlcProfile {
                footprint_mib: 3.5,
                sensitivity: 1.5,
                pressure: 0.20,
                miss_bw_gbps: 4.5,
            },
            jitter: (0.08, 12.0, 1.6),
            host_setup_s: 0.2,
        },
        ProgramDef {
            name: "leukocyte",
            t_cpu_s: 50.88,
            t_gpu_s: 23.08,
            tm_s: 4.0,
            splits: vec![(0.46, 0.20), (0.28, 0.52), (0.26, 0.28)],
            llc: LlcProfile {
                footprint_mib: 5.0,
                sensitivity: 0.6,
                pressure: 0.25,
                miss_bw_gbps: 5.0,
            },
            jitter: (0.10, 21.0, 2.4),
            host_setup_s: 0.3,
        },
        ProgramDef {
            name: "heartwall",
            t_cpu_s: 54.68,
            t_gpu_s: 22.99,
            tm_s: 9.0,
            splits: vec![(0.44, 0.28), (0.26, 0.46), (0.30, 0.26)],
            llc: LlcProfile {
                footprint_mib: 8.0,
                sensitivity: 0.8,
                pressure: 0.50,
                miss_bw_gbps: 5.0,
            },
            jitter: (0.14, 17.0, 3.0),
            host_setup_s: 0.3,
        },
    ]
}

/// Solve `combine(tc, tm) = t_total` for `tc` under the `max + ov*min`
/// overlap model.
fn solve_tc(t_total: f64, tm: f64) -> f64 {
    if tm <= t_total / (1.0 + OVERLAP) {
        t_total - OVERLAP * tm
    } else {
        ((t_total - tm) / OVERLAP).max(0.0)
    }
}

/// Build the calibrated [`JobSpec`] for one program definition.
///
/// # Panics
/// Panics if the definition cannot be calibrated within the efficiency
/// range `(0.02, 1.0)` — i.e. the Table I targets are unreachable on the
/// given machine.
pub fn build_program(cfg: &MachineConfig, def: &ProgramDef) -> JobSpec {
    assert!(!def.splits.is_empty());
    let sum_tc: f64 = def.splits.iter().map(|s| s.0).sum();
    let sum_tm: f64 = def.splits.iter().map(|s| s.1).sum();
    assert!(
        (sum_tc - 1.0).abs() < 1e-6,
        "{}: compute fractions must sum to 1",
        def.name
    );
    assert!(
        (sum_tm - 1.0).abs() < 1e-6,
        "{}: memory fractions must sum to 1",
        def.name
    );

    let bw_peak = cfg.cpu.bw_peak_gbps; // identical DRAM on both devices
    let tc_cpu_budget = solve_tc(def.t_cpu_s - def.host_setup_s, def.tm_s);

    // Provisional flops from an assumed CPU efficiency of 0.85.
    let e_cpu0 = 0.85;
    let cpu_rate = cfg.cpu.compute_rate(cfg.f_max(Device::Cpu));

    let mut phases: Vec<PhaseWork> = def
        .splits
        .iter()
        .map(|&(tc_frac, tm_frac)| PhaseWork {
            flops: tc_frac * tc_cpu_budget * cpu_rate * e_cpu0,
            bytes: tm_frac * def.tm_s * bw_peak,
            cpu_eff: e_cpu0,
            gpu_eff: 0.5, // placeholder, calibrated below
            llc_footprint_mib: def.llc.footprint_mib,
            llc_sensitivity: def.llc.sensitivity,
            llc_pressure: def.llc.pressure,
            llc_miss_bw_gbps: def.llc.miss_bw_gbps,
            overlap: OVERLAP,
        })
        .collect();

    // Calibrate each device's efficiency so the analytic solo time at max
    // frequency matches Table I (the engine agrees with the analytic model
    // to well under 1%).
    for device in Device::ALL {
        let target = match device {
            Device::Cpu => def.t_cpu_s,
            Device::Gpu => def.t_gpu_s,
        };
        let eff = calibrate_efficiency(cfg, &phases, def.host_setup_s, device, target)
            .unwrap_or_else(|| {
                panic!(
                    "{}: cannot reach {target}s on {device} within efficiency bounds",
                    def.name
                )
            });
        for p in &mut phases {
            match device {
                Device::Cpu => p.cpu_eff = eff,
                Device::Gpu => p.gpu_eff = eff,
            }
        }
    }

    let mut job = JobSpec::plain(def.name, phases);
    job.host_setup_s = def.host_setup_s;
    job.jitter_amp = def.jitter.0;
    job.jitter_period_s = def.jitter.1;
    job.jitter_phase = def.jitter.2;
    job
}

/// Bisect a uniform per-phase efficiency on `device` so the job's analytic
/// solo time at maximum frequency equals `target_s`.
fn calibrate_efficiency(
    cfg: &MachineConfig,
    phases: &[PhaseWork],
    host_setup_s: f64,
    device: Device,
    target_s: f64,
) -> Option<f64> {
    let time_with = |eff: f64| -> f64 {
        let probe: Vec<PhaseWork> = phases
            .iter()
            .map(|p| {
                let mut q = p.clone();
                match device {
                    Device::Cpu => q.cpu_eff = eff,
                    Device::Gpu => q.gpu_eff = eff,
                }
                q
            })
            .collect();
        let job = JobSpec::plain("probe", probe);
        host_setup_s
            + job.solo_time(
                cfg.device(device),
                device,
                cfg.f_max(device),
                cfg.f_max(device),
            )
    };

    let (mut lo, mut hi) = (0.02, 1.0);
    // time is monotone decreasing in efficiency
    if time_with(lo) < target_s || time_with(hi) > target_s {
        return None;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if time_with(mid) > target_s {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Build the full eight-program suite.
pub fn rodinia_suite(cfg: &MachineConfig) -> Vec<JobSpec> {
    program_defs()
        .iter()
        .map(|d| build_program(cfg, d))
        .collect()
}

/// Build one program by name.
pub fn by_name(cfg: &MachineConfig, name: &str) -> Option<JobSpec> {
    program_defs()
        .iter()
        .find(|d| d.name == name)
        .map(|d| build_program(cfg, d))
}

/// Scale a job's work (flops and traffic) by `scale`, modeling a different
/// input size; run time scales approximately linearly.
pub fn with_input_scale(job: &JobSpec, scale: f64) -> JobSpec {
    assert!(scale > 0.0);
    let mut j = job.clone();
    j.name = format!("{}#x{:.2}", job.name, scale);
    for p in &mut j.phases {
        p.flops *= scale;
        p.bytes *= scale;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::run_solo;

    fn cfg() -> MachineConfig {
        MachineConfig::ivy_bridge()
    }

    #[test]
    fn suite_has_eight_programs() {
        let s = rodinia_suite(&cfg());
        assert_eq!(s.len(), 8);
        let names: Vec<&str> = s.iter().map(|j| j.name.as_str()).collect();
        assert!(names.contains(&"dwt2d"));
        assert!(names.contains(&"streamcluster"));
    }

    #[test]
    fn analytic_times_match_table1() {
        let cfg = cfg();
        for def in program_defs() {
            let job = build_program(&cfg, &def);
            let t_cpu = job.solo_time(
                &cfg.cpu,
                Device::Cpu,
                cfg.f_max(Device::Cpu),
                cfg.f_max(Device::Cpu),
            );
            let t_gpu = job.solo_time(
                &cfg.gpu,
                Device::Gpu,
                cfg.f_max(Device::Gpu),
                cfg.f_max(Device::Gpu),
            );
            assert!(
                (t_cpu - def.t_cpu_s).abs() / def.t_cpu_s < 0.005,
                "{}: cpu {t_cpu} vs {}",
                def.name,
                def.t_cpu_s
            );
            assert!(
                (t_gpu - def.t_gpu_s).abs() / def.t_gpu_s < 0.005,
                "{}: gpu {t_gpu} vs {}",
                def.name,
                def.t_gpu_s
            );
        }
    }

    #[test]
    fn engine_times_match_table1() {
        let cfg = cfg();
        let s = cfg.freqs.max_setting();
        for def in program_defs() {
            let job = build_program(&cfg, &def);
            let cpu = run_solo(&cfg, &job, Device::Cpu, s).unwrap().time_s;
            let gpu = run_solo(&cfg, &job, Device::Gpu, s).unwrap().time_s;
            assert!(
                (cpu - def.t_cpu_s).abs() / def.t_cpu_s < 0.03,
                "{}: engine cpu {cpu} vs {}",
                def.name,
                def.t_cpu_s
            );
            assert!(
                (gpu - def.t_gpu_s).abs() / def.t_gpu_s < 0.03,
                "{}: engine gpu {gpu} vs {}",
                def.name,
                def.t_gpu_s
            );
        }
    }

    #[test]
    fn preferences_match_paper() {
        // Paper Table I: six GPU-preferred, dwt2d CPU-preferred, lud similar.
        let _cfg = cfg();
        for def in program_defs() {
            let ratio = def.t_cpu_s / def.t_gpu_s;
            match def.name {
                "dwt2d" => assert!(ratio < 0.8, "dwt2d strongly prefers the CPU"),
                "lud" => assert!(
                    (0.8..=1.25).contains(&ratio),
                    "lud has no strong preference"
                ),
                _ => assert!(ratio > 1.25, "{} prefers the GPU", def.name),
            }
        }
    }

    #[test]
    fn efficiencies_in_bounds() {
        let cfg = cfg();
        for job in rodinia_suite(&cfg) {
            for p in &job.phases {
                assert!(p.cpu_eff > 0.02 && p.cpu_eff <= 1.0, "{}", job.name);
                assert!(p.gpu_eff > 0.02 && p.gpu_eff <= 1.0, "{}", job.name);
            }
        }
    }

    #[test]
    fn demand_spread_is_wide() {
        // Bandwidth demands must spread across the degradation space for
        // co-scheduling to have anything to exploit.
        let cfg = cfg();
        let demands: Vec<f64> = rodinia_suite(&cfg)
            .iter()
            .map(|j| j.avg_demand(&cfg.gpu, Device::Gpu, 1.25, 1.25))
            .collect();
        let max = demands.iter().copied().fold(0.0, f64::max);
        let min = demands.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max > 6.0, "heaviest GPU demand {max}");
        assert!(min < 1.5, "lightest GPU demand {min}");
    }

    #[test]
    fn input_scale_scales_time() {
        let cfg = cfg();
        let base = by_name(&cfg, "lud").unwrap();
        let big = with_input_scale(&base, 1.5);
        let t0 = base.solo_time(&cfg.gpu, Device::Gpu, 1.25, 1.25);
        let t1 = big.solo_time(&cfg.gpu, Device::Gpu, 1.25, 1.25);
        assert!((t1 / t0 - 1.5).abs() < 0.05, "ratio {}", t1 / t0);
        assert!(big.name.starts_with("lud#"));
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(by_name(&cfg(), "nonexistent").is_none());
    }

    #[test]
    fn section3_pair_degradations_match_paper() {
        // Paper Section III: co-running dwt2d (CPU) with streamcluster (GPU)
        // slows dwt2d by 81% and streamcluster by 5%; with hotspot instead,
        // the slowdowns are ~17% and ~5%.
        let cfg = cfg();
        let s = cfg.freqs.max_setting();
        let sc = by_name(&cfg, "streamcluster").unwrap();
        let dwt = by_name(&cfg, "dwt2d").unwrap();
        let hot = by_name(&cfg, "hotspot").unwrap();
        let dwt_solo = run_solo(&cfg, &dwt, Device::Cpu, s).unwrap().time_s;
        let sc_solo = run_solo(&cfg, &sc, Device::Gpu, s).unwrap().time_s;
        let hot_solo = run_solo(&cfg, &hot, Device::Gpu, s).unwrap().time_s;
        let mut g = apu_sim::NullGovernor;
        let p1 = apu_sim::run_pair(&cfg, &dwt, &sc, s, &mut g).unwrap();
        let p2 = apu_sim::run_pair(&cfg, &dwt, &hot, s, &mut g).unwrap();
        let dwt_vs_sc = p1.cpu_time_s / dwt_solo - 1.0;
        let sc_deg = p1.gpu_time_s / sc_solo - 1.0;
        let dwt_vs_hot = p2.cpu_time_s / dwt_solo - 1.0;
        let hot_deg = p2.gpu_time_s / hot_solo - 1.0;
        assert!(
            (0.55..=1.0).contains(&dwt_vs_sc),
            "dwt2d vs streamcluster: {dwt_vs_sc}"
        );
        assert!(sc_deg < 0.15, "streamcluster barely degrades: {sc_deg}");
        assert!(
            (0.05..=0.30).contains(&dwt_vs_hot),
            "dwt2d vs hotspot: {dwt_vs_hot}"
        );
        assert!(hot_deg < 0.15, "hotspot barely degrades: {hot_deg}");
        assert!(
            dwt_vs_sc > 3.0 * dwt_vs_hot,
            "pairing matters: {dwt_vs_sc} vs {dwt_vs_hot}"
        );
    }

    #[test]
    fn solve_tc_branches() {
        // compute-bound: tm small
        let tc = solve_tc(10.0, 2.0);
        assert!((tc - 9.6).abs() < 1e-12);
        // memory-bound: tm close to total
        let tc2 = solve_tc(10.0, 9.5);
        assert!((tc2 - 2.5).abs() < 1e-9);
        assert!(tc2 < 9.5);
    }
}
