//! Scaled-down versions of the paper's experiment claims, as regression
//! tests (the full-fidelity numbers live in the bench binaries and
//! EXPERIMENTS.md).

use apu_sim::{Bias, Device, FreqSetting, MachineConfig, NullGovernor};
use kernels::{by_name, rodinia16, rodinia8, with_input_scale};
use perf_model::{characterize_stage, CharacterizeConfig};
use runtime::{CoScheduleRuntime, RuntimeConfig};

#[test]
fn fig2_standalone_preferences() {
    // streamcluster/cfd/hotspot prefer the GPU by 1.8-2.5x; dwt2d prefers
    // the CPU by ~2.5x.
    let cfg = MachineConfig::ivy_bridge();
    let s = cfg.freqs.max_setting();
    let factor = |name: &str| {
        let j = with_input_scale(&by_name(&cfg, name).unwrap(), 0.15);
        let c = apu_sim::run_solo(&cfg, &j, Device::Cpu, s).unwrap().time_s;
        let g = apu_sim::run_solo(&cfg, &j, Device::Gpu, s).unwrap().time_s;
        c / g
    };
    assert!((2.0..3.0).contains(&factor("streamcluster")));
    assert!((1.5..2.3).contains(&factor("cfd")));
    assert!((2.0..3.0).contains(&factor("hotspot")));
    assert!((0.25..0.55).contains(&factor("dwt2d")));
}

#[test]
fn fig5_fig6_surface_shape() {
    let cfg = MachineConfig::ivy_bridge();
    let mut ccfg = CharacterizeConfig::fast(&cfg);
    ccfg.grid_points = 5;
    ccfg.micro_duration_s = 2.0;
    let stage = characterize_stage(&cfg, &ccfg, cfg.freqs.max_setting());
    let cpu = &stage.surface.deg.cpu;
    let gpu = &stage.surface.deg.gpu;
    // CPU peaks higher than GPU but suffers less over most of the grid.
    assert!(cpu.max_value() > gpu.max_value());
    assert!(cpu.frac_in(0.0, 0.20) + 1e-9 >= gpu.frac_in(0.0, 0.20));
    assert!((0.45..0.90).contains(&cpu.max_value()));
    assert!((0.25..0.60).contains(&gpu.max_value()));
}

#[test]
fn fig9_power_overshoot_bounded() {
    // Under a reactive governor, overshoot above the cap is transient and
    // bounded (paper: typically < 2 W).
    let cfg = MachineConfig::ivy_bridge();
    let a = with_input_scale(&by_name(&cfg, "srad").unwrap(), 0.2);
    let b = with_input_scale(&by_name(&cfg, "leukocyte").unwrap(), 0.2);
    let cap = 16.0;
    let mut gov = apu_sim::BiasedGovernor::gpu_biased(cap);
    let pair = apu_sim::run_pair(&cfg, &a, &b, cfg.freqs.max_setting(), &mut gov).unwrap();
    let n = pair.trace.len();
    let late = &pair.trace.samples_w[n / 3..];
    let late_max = late.iter().copied().fold(0.0, f64::max);
    assert!(
        late_max <= cap + 2.0,
        "settled overshoot {late_max} too large"
    );
}

#[test]
fn fig10_ordering_at_8_jobs() {
    let machine = MachineConfig::ivy_bridge();
    let jobs = rodinia8(&machine)
        .jobs
        .iter()
        .map(|j| with_input_scale(j, 0.12))
        .collect();
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = 15.0;
    let rt = CoScheduleRuntime::new(machine, jobs, cfg);
    let random = rt.random_avg_makespan(0..4);
    let default_g = rt
        .execute_default(&rt.schedule_default(), Bias::Gpu)
        .makespan_s;
    let hcs_plus = rt.execute_planned(&rt.schedule_hcs_plus()).makespan_s;
    // Paper Fig 10 ordering: Random > Default_G > HCS+.
    assert!(default_g < random, "default beats random at 8 jobs");
    assert!(hcs_plus < default_g, "HCS+ beats default");
}

#[test]
fn fig11_defaults_collapse_at_16_jobs() {
    let machine = MachineConfig::ivy_bridge();
    let jobs = rodinia16(&machine, 7)
        .jobs
        .iter()
        .map(|j| with_input_scale(j, 0.10))
        .collect();
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = 15.0;
    let rt = CoScheduleRuntime::new(machine, jobs, cfg);
    let random = rt.random_avg_makespan(0..4);
    let default_g = rt
        .execute_default(&rt.schedule_default(), Bias::Gpu)
        .makespan_s;
    let hcs_plus = rt.execute_planned(&rt.schedule_hcs_plus()).makespan_s;
    // Paper Fig 11: the multiprogrammed Default falls behind Random, while
    // HCS+ stays well ahead.
    assert!(
        default_g > random * 0.95,
        "default must not beat random at 16 jobs"
    );
    assert!(hcs_plus < random, "HCS+ beats random");
    assert!(hcs_plus < default_g * 0.9, "HCS+ far ahead of default");
}

#[test]
fn sec3_frequency_enumeration_spread() {
    // Under the cap, the best uniform co-schedule of the four programs is
    // much faster than the worst (paper: ~2.3x).
    let machine = MachineConfig::ivy_bridge();
    let jobs: Vec<_> = kernels::section3_four(&machine)
        .jobs
        .iter()
        .map(|j| with_input_scale(j, 0.12))
        .collect();
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = 15.0;
    let rt = CoScheduleRuntime::new(machine, jobs, cfg);
    let ex = corun_core::exhaustive_uniform(rt.model(), 15.0);
    let ratio = ex.worst.1 / ex.best.1;
    assert!(ratio > 1.6, "best-vs-worst spread {ratio} too small");
}

#[test]
fn medium_frequency_setting_exists() {
    // The paper's "medium" exemplar (2.2 GHz CPU, 0.85 GHz GPU) maps onto
    // the ladders and fits the 16 W cap for a typical pair.
    let cfg = MachineConfig::ivy_bridge();
    let f = cfg.freqs.cpu.nearest_level(2.2);
    let g = cfg.freqs.gpu.nearest_level(0.85);
    let setting = FreqSetting::new(f, g);
    assert!((cfg.freqs.ghz(Device::Cpu, setting) - 2.2).abs() < 0.1);
    assert!((cfg.freqs.ghz(Device::Gpu, setting) - 0.85).abs() < 0.06);
    let busy = cfg.power_model().package_power_busy(setting);
    assert!(busy < 16.0, "medium setting busy power {busy} fits 16 W");
    let _ = NullGovernor;
}

#[test]
fn engine_is_deterministic() {
    // Two identical runs must produce bit-identical traces and records —
    // the property that makes every experiment in this repo reproducible.
    let cfg = MachineConfig::ivy_bridge();
    let a = with_input_scale(&by_name(&cfg, "cfd").unwrap(), 0.15);
    let b = with_input_scale(&by_name(&cfg, "heartwall").unwrap(), 0.15);
    let mut g1 = apu_sim::BiasedGovernor::gpu_biased(15.0);
    let mut g2 = apu_sim::BiasedGovernor::gpu_biased(15.0);
    let r1 = apu_sim::run_pair(&cfg, &a, &b, cfg.freqs.max_setting(), &mut g1).unwrap();
    let r2 = apu_sim::run_pair(&cfg, &a, &b, cfg.freqs.max_setting(), &mut g2).unwrap();
    assert_eq!(r1.trace, r2.trace);
    assert_eq!(r1.cpu_time_s, r2.cpu_time_s);
    assert_eq!(r1.gpu_time_s, r2.gpu_time_s);
}

#[test]
fn table1_min_corun_exceeds_standalone() {
    // Table I invariant: the minimal co-run time can never beat the
    // standalone time at the same constraint set.
    let machine = MachineConfig::ivy_bridge();
    let jobs: Vec<_> = rodinia8(&machine)
        .jobs
        .iter()
        .map(|j| with_input_scale(j, 0.1))
        .collect();
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = 16.0;
    let rt = CoScheduleRuntime::new(machine, jobs, cfg);
    let m = rt.model();
    use corun_core::CoRunModel;
    for i in 0..m.len() {
        for dev in [Device::Cpu, Device::Gpu] {
            let (solo_level, solo_t) =
                corun_core::best_solo_run(m, i, dev, 16.0).expect("feasible");
            let mut min_corun = f64::INFINITY;
            for j in 0..m.len() {
                if i == j {
                    continue;
                }
                let (cj, gj) = match dev {
                    Device::Cpu => (i, j),
                    Device::Gpu => (j, i),
                };
                for (f, g) in corun_core::feasible_pair_settings(m, cj, gj, 16.0) {
                    let own = if dev == Device::Cpu { f } else { g };
                    let co = if dev == Device::Cpu { g } else { f };
                    min_corun = min_corun.min(m.corun_time(i, dev, own, j, co));
                }
            }
            assert!(
                min_corun >= solo_t * 0.999,
                "job {i} on {dev}: min co-run {min_corun} below solo {solo_t} (L{solo_level})"
            );
        }
    }
}
