//! Integration tests for the beyond-the-paper extensions: online
//! scheduling, annealing, branch-and-bound, chains, fairness, sweeps,
//! caching, and the second machine preset.

use apu_sim::{Device, MachineConfig, NullGovernor};
use corun_core::CoRunModel;
use corun_core::{
    anneal, best_sequence, branch_and_bound, evaluate, fairness, AnnealConfig, Arrival, BnbConfig,
    HcsConfig, OnlinePolicy,
};
use kernels::{poisson, rodinia8, with_input_scale};
use runtime::{cap_sweep, CoScheduleRuntime, Method, RuntimeConfig};

fn small_rt(machine: MachineConfig, cap: f64) -> CoScheduleRuntime {
    let jobs = rodinia8(&machine)
        .jobs
        .iter()
        .map(|j| with_input_scale(j, 0.1))
        .collect();
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = cap;
    CoScheduleRuntime::new(machine, jobs, cfg)
}

#[test]
fn optimizer_hierarchy_holds_in_model() {
    // bound <= bnb <= anneal(HCS+) <= HCS+ <= HCS (all in the model).
    let rt = small_rt(MachineConfig::ivy_bridge(), 15.0);
    let m = rt.model();
    let cap = Some(15.0);
    let hcs = evaluate(m, &rt.schedule_hcs().schedule, cap).makespan_s;
    let plus_sched = rt.schedule_hcs_plus();
    let plus = evaluate(m, &plus_sched, cap).makespan_s;
    let mut acfg = AnnealConfig::new(15.0);
    acfg.iterations = 1000;
    let ann = anneal(m, &plus_sched, &acfg).value;
    let bnb = branch_and_bound(m, &BnbConfig::new(15.0)).makespan_s;
    let bound = rt.lower_bound().t_low_s;
    assert!(plus <= hcs + 1e-9);
    assert!(ann <= plus + 1e-9);
    assert!(bnb <= ann + 1e-9);
    assert!(bound <= bnb + 1e-6);
}

#[test]
fn online_policy_full_stream_on_simulator() {
    let rt = small_rt(MachineConfig::ivy_bridge(), 15.0);
    let policy = OnlinePolicy::new(rt.model(), HcsConfig::with_cap(15.0));
    let arrivals: Vec<Arrival> = poisson(8, 2.0, 8.0, 3)
        .into_iter()
        .map(|a| Arrival {
            job: a.job,
            at_s: a.at_s,
        })
        .collect();
    let mut gov = NullGovernor;
    let run = runtime::execute_online(
        rt.machine(),
        rt.jobs(),
        rt.model(),
        &policy,
        &arrivals,
        &mut gov,
        rt.machine().freqs.min_setting(),
    )
    .expect("online run");
    assert_eq!(run.records.len(), 8);
    for rec in &run.records {
        let arrival = arrivals.iter().find(|a| a.job == rec.tag).unwrap().at_s;
        assert!(
            rec.start_s >= arrival - 1e-6,
            "no job starts before it arrives"
        );
    }
}

#[test]
fn chain_solver_agrees_with_runtime_model() {
    let rt = small_rt(MachineConfig::ivy_bridge(), 15.0);
    let m = rt.model();
    let shorts: Vec<(usize, usize)> = vec![(1, 9), (3, 9), (5, 9)];
    let (seq, out) = best_sequence(m, 0, Device::Cpu, 15, &shorts);
    assert_eq!(seq.len(), 3);
    assert!(out.makespan_s > 0.0);
    // the solved order is at least as good as the given order
    let given = corun_core::chain_completion(m, 0, Device::Cpu, 15, &shorts);
    assert!(out.makespan_s <= given.makespan_s + 1e-9);
}

#[test]
fn fairness_improves_with_hcs_over_serialization() {
    let rt = small_rt(MachineConfig::ivy_bridge(), 15.0);
    let m = rt.model();
    let plus = rt.schedule_hcs_plus();
    let ev = evaluate(m, &plus, Some(15.0));
    let f_hcs = fairness(m, &ev, 15.0);
    // all on GPU sequentially
    let mut serial = corun_core::Schedule::new();
    for i in 0..m.len() {
        serial.gpu.push(corun_core::Assignment { job: i, level: 9 });
    }
    let f_serial = fairness(m, &evaluate(m, &serial, Some(15.0)), 15.0);
    assert!(
        f_hcs.jain_index > f_serial.jain_index,
        "co-scheduling is fairer than serialization: {} vs {}",
        f_hcs.jain_index,
        f_serial.jain_index
    );
}

#[test]
fn kaveri_pipeline_end_to_end() {
    let rt = small_rt(MachineConfig::kaveri(), 15.0);
    let s = rt.schedule_hcs_plus();
    assert!(s.is_complete_for(8));
    let run = rt.execute_planned(&s);
    assert_eq!(run.records.len(), 8);
    let random = rt.random_avg_makespan(0..3);
    assert!(
        run.makespan_s < random,
        "method works on the second machine too"
    );
}

#[test]
fn sweep_monotone_in_cap_for_planned_methods() {
    let machine = MachineConfig::ivy_bridge();
    let jobs: Vec<apu_sim::JobSpec> = rodinia8(&machine)
        .jobs
        .iter()
        .map(|j| with_input_scale(j, 0.08))
        .collect();
    let base = RuntimeConfig::fast(&machine);
    let r = cap_sweep(&machine, &jobs, &base, &[20.0, 10.0], &[Method::HcsPlus], 1);
    let loose = r.cell(20.0, Method::HcsPlus).unwrap();
    let tight = r.cell(10.0, Method::HcsPlus).unwrap();
    assert!(tight.makespan_s >= loose.makespan_s * 0.98);
    assert!(tight.peak_power_w <= 10.0 + 2.5, "peak near the tight cap");
}

#[test]
fn characterization_cache_roundtrip_through_pipeline() {
    let machine = MachineConfig::ivy_bridge();
    let dir = std::env::temp_dir().join(format!("corun-int-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs: Vec<apu_sim::JobSpec> = rodinia8(&machine)
        .jobs
        .iter()
        .take(3)
        .map(|j| with_input_scale(j, 0.08))
        .collect();
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cache_dir = Some(dir.clone());
    cfg.llc_probe = false;
    let rt1 = CoScheduleRuntime::new(machine.clone(), jobs.clone(), cfg.clone());
    let rt2 = CoScheduleRuntime::new(machine, jobs, cfg);
    // Cached characterization must give identical schedules.
    assert_eq!(rt1.schedule_hcs().schedule, rt2.schedule_hcs().schedule);
    let _ = std::fs::remove_dir_all(&dir);
}
