//! End-to-end integration: machine + workloads + models + algorithms +
//! executor, through the public APIs only.

use apu_sim::{Bias, Device, MachineConfig};
use corun_core::{evaluate, CoRunModel};
use kernels::{rodinia8, with_input_scale};
use runtime::{CoScheduleRuntime, RuntimeConfig};

fn small_runtime(cap_w: f64) -> CoScheduleRuntime {
    let machine = MachineConfig::ivy_bridge();
    let jobs = rodinia8(&machine)
        .jobs
        .iter()
        .map(|j| with_input_scale(j, 0.12))
        .collect();
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = cap_w;
    CoScheduleRuntime::new(machine, jobs, cfg)
}

#[test]
fn full_pipeline_schedules_and_executes() {
    let rt = small_runtime(15.0);
    let out = rt.schedule_hcs();
    assert!(out.schedule.is_complete_for(8), "{}", out.schedule);
    let plus = rt.schedule_hcs_plus();
    assert!(plus.is_complete_for(8));
    let run = rt.execute_planned(&plus);
    assert_eq!(run.records.len(), 8, "every job must complete");
    assert!(run.makespan_s > 0.0);
}

#[test]
fn hcs_plus_beats_baselines_in_ground_truth() {
    let rt = small_runtime(15.0);
    let random = rt.random_avg_makespan(0..5);
    let hcs_plus = rt.execute_planned(&rt.schedule_hcs_plus()).makespan_s;
    let default_g = rt
        .execute_default(&rt.schedule_default(), Bias::Gpu)
        .makespan_s;
    assert!(hcs_plus < random, "HCS+ {hcs_plus} vs random {random}");
    assert!(
        hcs_plus < default_g,
        "HCS+ {hcs_plus} vs default {default_g}"
    );
}

#[test]
fn lower_bound_holds_for_every_scheduler() {
    let rt = small_runtime(15.0);
    let bound = rt.lower_bound().t_low_s;
    for span in [
        rt.execute_planned(&rt.schedule_hcs_plus()).makespan_s,
        rt.execute_default(&rt.schedule_default(), Bias::Gpu)
            .makespan_s,
        rt.execute_governed(&rt.schedule_random(3), Bias::Gpu)
            .makespan_s,
    ] {
        assert!(bound <= span * 1.02, "bound {bound} above achieved {span}");
    }
}

#[test]
fn planned_execution_stays_near_cap() {
    let rt = small_runtime(15.0);
    let run = rt.execute_planned(&rt.schedule_hcs_plus());
    assert!(
        run.trace.max_w() <= 15.0 + 2.5,
        "peak power {} too far above the cap",
        run.trace.max_w()
    );
}

#[test]
fn model_agrees_with_ground_truth_reasonably() {
    let rt = small_runtime(15.0);
    let s = rt.schedule_hcs_plus();
    let predicted = evaluate(rt.model(), &s, Some(15.0)).makespan_s;
    let truth = rt.execute_planned(&s).makespan_s;
    let err = (predicted - truth).abs() / truth;
    assert!(
        err < 0.25,
        "model error {err} too large: {predicted} vs {truth}"
    );
}

#[test]
fn preferences_match_paper_table1() {
    let rt = small_runtime(16.0);
    let m = rt.model();
    let cfg = corun_core::HcsConfig::with_cap(16.0);
    let mut gpu_pref = 0;
    for i in 0..m.len() {
        let name = m.name(i).to_owned();
        let p = corun_core::categorize(m, &cfg, i);
        match name.split('#').next().unwrap() {
            "dwt2d" => assert_eq!(p, corun_core::Preference::Cpu, "dwt2d prefers the CPU"),
            "lud" => {} // near-tied; either Non or a weak preference is fine
            _ => {
                if p == corun_core::Preference::Gpu {
                    gpu_pref += 1;
                }
            }
        }
    }
    assert!(
        gpu_pref >= 5,
        "most programs prefer the GPU, got {gpu_pref}"
    );
}

#[test]
fn tighter_cap_slows_schedules() {
    let loose = small_runtime(20.0);
    let tight = small_runtime(11.0);
    let t_loose = loose.execute_planned(&loose.schedule_hcs_plus()).makespan_s;
    let t_tight = tight.execute_planned(&tight.schedule_hcs_plus()).makespan_s;
    assert!(
        t_tight > t_loose,
        "an 11 W cap must cost throughput: {t_tight} vs {t_loose}"
    );
}

#[test]
fn vulnerability_probe_flags_dwt2d() {
    let rt = small_runtime(15.0);
    let vulns = rt.vulnerabilities().expect("probe enabled in fast config");
    let m = rt.model();
    let dwt = (0..m.len())
        .find(|&i| m.name(i).starts_with("dwt2d"))
        .unwrap();
    let sc = (0..m.len())
        .find(|&i| m.name(i).starts_with("streamcluster"))
        .unwrap();
    assert!(vulns[dwt].max_excess() > 0.4, "dwt2d is LLC-fragile");
    assert!(
        vulns[sc].max_excess() < vulns[dwt].max_excess() / 2.0,
        "streamcluster is not"
    );
    // and the scheduler's model therefore knows dwt2d + streamcluster is bad
    let kc = m.levels(Device::Cpu) - 1;
    let kg = m.levels(Device::Gpu) - 1;
    let hot = (0..m.len())
        .find(|&i| m.name(i).starts_with("hotspot"))
        .unwrap();
    let d_bad = m.degradation(dwt, Device::Cpu, kc, sc, kg);
    let d_ok = m.degradation(dwt, Device::Cpu, kc, hot, kg);
    assert!(
        d_bad > 2.0 * d_ok,
        "model must separate the pairings: {d_bad} vs {d_ok}"
    );
}
