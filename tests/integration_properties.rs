//! Cross-crate property-based tests (proptest): invariants of the
//! scheduling stack under randomized models, schedules, and workloads.

use apu_sim::Device;
use corun_core::{
    corun_beneficial, evaluate, hcs, lower_bound, pair_completion, random_schedule, refine,
    Assignment, CoRunModel, HcsConfig, RefineConfig, Schedule, TableModel,
};
use proptest::prelude::*;

/// A randomized but well-formed table model.
fn arb_model(max_jobs: usize) -> impl Strategy<Value = TableModel> {
    (2..=max_jobs, 2usize..=5, 2usize..=4, any::<u64>()).prop_map(|(n, kc, kg, seed)| {
        // simple xorshift so the model is a pure function of the seed
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        let times: Vec<(f64, f64)> = (0..n)
            .map(|_| (5.0 + 60.0 * next(), 5.0 + 60.0 * next()))
            .collect();
        let degs: Vec<f64> = (0..n * n).map(|_| next() * 0.8).collect();
        let powers: Vec<f64> = (0..n).map(|_| 4.0 + 8.0 * next()).collect();
        TableModel::build(
            (0..n).map(|i| format!("j{i}")).collect(),
            kc,
            kg,
            4.0,
            move |i, d, f| {
                let (tc, tg) = times[i];
                let t = match d {
                    Device::Cpu => tc,
                    Device::Gpu => tg,
                };
                let k = match d {
                    Device::Cpu => kc,
                    Device::Gpu => kg,
                };
                t / (0.4 + 0.6 * f as f64 / (k - 1) as f64)
            },
            move |i, _d, _f, j, _g| degs[i * n + j],
            move |i, d, f| {
                let k = match d {
                    Device::Cpu => kc,
                    Device::Gpu => kg,
                };
                4.0 + powers[i] * ((f + 1) as f64 / k as f64)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hcs_schedules_every_job_exactly_once(model in arb_model(10)) {
        let out = hcs(&model, &HcsConfig::uncapped());
        prop_assert!(out.schedule.is_complete_for(model.len()));
    }

    #[test]
    fn hcs_capped_schedules_are_cap_feasible_in_model(model in arb_model(8)) {
        // Pick a cap that is restrictive but not impossible: above the
        // floor power of EVERY pair (a job whose floor-level power exceeds
        // the cap can never be scheduled compliantly, and the repair pass
        // rightly gives up on it).
        let cap = model.corun_power(Some((0, model.levels(Device::Cpu) - 1)),
                                    Some((1, model.levels(Device::Gpu) - 1))) * 0.8;
        let n = model.len();
        let max_floor = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| model.corun_power(Some((i, 0)), Some((j, 0))))
            .fold(0.0_f64, f64::max);
        prop_assume!(cap > max_floor);
        let out = hcs(&model, &HcsConfig::with_cap(cap));
        prop_assert!(out.schedule.is_complete_for(model.len()));
        let r = evaluate(&model, &out.schedule, Some(cap));
        prop_assert!(r.cap_ok, "peak {} vs cap {}", r.peak_power_w, cap);
    }

    #[test]
    fn refinement_never_worsens_model_makespan(model in arb_model(9), seed in any::<u64>()) {
        let out = hcs(&model, &HcsConfig::uncapped());
        let mut rc = RefineConfig::new(f64::INFINITY);
        rc.seed = seed;
        let r = refine(&model, &out.schedule, &rc);
        prop_assert!(r.after_s <= r.before_s + 1e-9);
        prop_assert!(r.schedule.is_complete_for(model.len()));
    }

    #[test]
    fn lower_bound_below_any_schedule(model in arb_model(8), seed in any::<u64>()) {
        let b = lower_bound(&model, f64::INFINITY);
        let s = random_schedule(&model, seed, 0.2);
        let span = evaluate(&model, &s, None).makespan_s;
        prop_assert!(b.t_low_s <= span + 1e-6,
            "bound {} above random schedule {}", b.t_low_s, span);
        let out = hcs(&model, &HcsConfig::uncapped());
        let hspan = evaluate(&model, &out.schedule, None).makespan_s;
        prop_assert!(b.t_low_s <= hspan + 1e-6);
    }

    #[test]
    fn evaluator_segments_tile_and_makespan_is_max_finish(
        model in arb_model(8), seed in any::<u64>()
    ) {
        let s = random_schedule(&model, seed, 0.15);
        let r = evaluate(&model, &s, None);
        let max_finish = r.finish_s.iter().flatten().fold(0.0_f64, |a, &b| a.max(b));
        prop_assert!((r.makespan_s - max_finish).abs() < 1e-6);
        for w in r.segments.windows(2) {
            prop_assert!((w[0].t1 - w[1].t0).abs() < 1e-6);
            prop_assert!(w[0].t1 >= w[0].t0 - 1e-9);
        }
    }

    #[test]
    fn theorem_matches_bruteforce(l1 in 1.0..60.0_f64, d1 in 0.0..1.5_f64,
                                  l2 in 1.0..60.0_f64, d2 in 0.0..1.5_f64) {
        let tc = (l1 * (1.0 + d1)).max(l2 * (1.0 + d2));
        let ts = l1 + l2;
        prop_assert_eq!(corun_beneficial(l1, d1, l2, d2), tc < ts);
    }

    #[test]
    fn pair_completion_bounds(l1 in 0.1..60.0_f64, d1 in 0.0..1.5_f64,
                              l2 in 0.1..60.0_f64, d2 in 0.0..1.5_f64) {
        let (t1, t2) = pair_completion(l1, d1, l2, d2);
        // each job finishes no earlier than solo and no later than fully
        // degraded
        prop_assert!(t1 >= l1 - 1e-9 && t1 <= l1 * (1.0 + d1) + 1e-9);
        prop_assert!(t2 >= l2 - 1e-9 && t2 <= l2 * (1.0 + d2) + 1e-9);
        // the one that finishes first is fully degraded until then
        let first = t1.min(t2);
        prop_assert!(first >= (l1 * (1.0 + d1)).min(l2 * (1.0 + d2)) - 1e-9);
    }

    #[test]
    fn random_schedule_is_complete_permutation(model in arb_model(12), seed in any::<u64>()) {
        let s = random_schedule(&model, seed, 0.3);
        prop_assert!(s.is_complete_for(model.len()));
    }

    #[test]
    fn evaluate_with_solo_tail_never_overlaps(model in arb_model(6)) {
        let n = model.len();
        let kc = model.levels(Device::Cpu) - 1;
        let mut s = Schedule::new();
        for i in 0..n / 2 {
            s.cpu.push(Assignment { job: i, level: kc });
        }
        for i in n / 2..n {
            s.solo_tail.push(corun_core::SoloRun {
                job: i,
                device: Device::Gpu,
                level: model.levels(Device::Gpu) - 1,
            });
        }
        let r = evaluate(&model, &s, None);
        // solo segments must come after all co-run segments and be disjoint
        let mut prev_end = 0.0;
        for seg in &r.segments {
            prop_assert!(seg.t0 >= prev_end - 1e-9);
            prev_end = seg.t1;
        }
    }
}

/// Every schedule the stack produces must pass the `SCH0xx` lint passes
/// in `corun-verify` without error-severity diagnostics.
mod lints {
    use super::*;
    use corun_verify::lint_schedule;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn scheduler_outputs_pass_schedule_lints(model in arb_model(8), seed in any::<u64>()) {
            // HCS under a restrictive-but-possible cap (same construction
            // as the cap-feasibility property above): levels are planned,
            // so any cap infeasibility would be an error.
            let cap = model.corun_power(Some((0, model.levels(Device::Cpu) - 1)),
                                        Some((1, model.levels(Device::Gpu) - 1))) * 0.8;
            let n = model.len();
            let max_floor = (0..n)
                .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
                .map(|(i, j)| model.corun_power(Some((i, 0)), Some((j, 0))))
                .fold(0.0_f64, f64::max);
            prop_assume!(cap > max_floor);
            let capped = hcs(&model, &HcsConfig::with_cap(cap));
            let r = lint_schedule(&model, &capped.schedule, Some(cap), true);
            prop_assert!(r.is_clean(), "HCS:\n{}", r.render_human());

            // Uncapped HCS plus local refinement (the HCS+ shape).
            let out = hcs(&model, &HcsConfig::uncapped());
            let mut rc = RefineConfig::new(f64::INFINITY);
            rc.seed = seed;
            let refined = refine(&model, &out.schedule, &rc);
            let r = lint_schedule(&model, &refined.schedule, None, true);
            prop_assert!(r.is_clean(), "HCS+refine:\n{}", r.render_human());

            // The Random baseline always assigns maximum levels and relies
            // on the governor to hold the cap, so cap infeasibility must
            // downgrade to a warning, not an error.
            let s = random_schedule(&model, seed, 0.2);
            let r = lint_schedule(&model, &s, Some(cap), false);
            prop_assert!(r.is_clean(), "random:\n{}", r.render_human());
        }
    }
}

/// Workload-level properties on the real simulator (fewer cases: each runs
/// the engine).
mod simulator {
    use super::*;
    use apu_sim::{run_solo, MachineConfig};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn engine_time_scales_with_input(scale in 0.05..0.3_f64) {
            let cfg = MachineConfig::ivy_bridge();
            let base = kernels::by_name(&cfg, "lud").unwrap();
            let job = kernels::with_input_scale(&base, scale);
            let s = cfg.freqs.max_setting();
            let t = run_solo(&cfg, &job, Device::Gpu, s).unwrap().time_s;
            let expected = 24.83 * scale + 0.2 * (1.0 - scale); // host setup constant
            prop_assert!((t - expected).abs() / expected < 0.1,
                "scaled run {t} vs expected {expected}");
        }

        #[test]
        fn frequency_monotonicity_on_engine(level in 0usize..16) {
            let cfg = MachineConfig::ivy_bridge();
            let job = kernels::with_input_scale(&kernels::by_name(&cfg, "leukocyte").unwrap(), 0.1);
            let s_lo = apu_sim::FreqSetting::new(level, 5);
            let s_hi = apu_sim::FreqSetting::new(15, 5);
            let t_lo = run_solo(&cfg, &job, Device::Cpu, s_lo).unwrap().time_s;
            let t_hi = run_solo(&cfg, &job, Device::Cpu, s_hi).unwrap().time_s;
            prop_assert!(t_lo >= t_hi - 0.05);
        }
    }
}
