//! Model explorer: inspect the co-run degradation space and query the
//! staged-interpolation predictor for arbitrary program pairs.
//!
//! ```text
//! cargo run --release --example model_explorer [-- <cpu_prog> <gpu_prog>]
//! ```

use apu_sim::MachineConfig;
use kernels::rodinia_suite;
use perf_model::{characterize, profile_batch, CharacterizeConfig, ProfileMethod, StagedPredictor};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cpu_prog = args.first().map_or("dwt2d", String::as_str);
    let gpu_prog = args.get(1).map_or("streamcluster", String::as_str);

    let cfg = MachineConfig::ivy_bridge();
    let jobs = rodinia_suite(&cfg);
    let mut ccfg = CharacterizeConfig::fast(&cfg);
    ccfg.grid_points = 6;
    println!("characterizing the degradation space...");
    let stages = characterize(&cfg, &ccfg);
    let predictor = StagedPredictor::new(&cfg, stages);
    let profiles = profile_batch(&cfg, &jobs, ProfileMethod::Analytic);

    // Show the max-frequency CPU surface.
    let stage = predictor
        .stages()
        .iter()
        .max_by(|a, b| (a.cpu_ghz + a.gpu_ghz).total_cmp(&(b.cpu_ghz + b.gpu_ghz)))
        .expect("stages");
    println!();
    println!(
        "CPU degradation surface at {:.2}/{:.2} GHz (% slower; rows CPU demand, cols GPU demand):",
        stage.cpu_ghz, stage.gpu_ghz
    );
    let grid = &stage.surface.deg.cpu;
    print!("{:>7}", "");
    for g in &grid.gpu_axis {
        print!("{g:>6.1}");
    }
    println!();
    for (i, c) in grid.cpu_axis.iter().enumerate() {
        print!("{c:>7.1}");
        for j in 0..grid.gpu_axis.len() {
            print!("{:>6.0}", grid.at(i, j) * 100.0);
        }
        println!();
    }

    // Predict the requested pair at three frequency settings.
    let find = |name: &str| {
        profiles
            .iter()
            .position(|p| p.name == name)
            .unwrap_or_else(|| {
                panic!(
                    "unknown program {name}; options: {:?}",
                    profiles.iter().map(|p| &p.name).collect::<Vec<_>>()
                )
            })
    };
    let ci = find(cpu_prog);
    let gi = find(gpu_prog);
    println!();
    println!("predictions for {cpu_prog}(CPU) + {gpu_prog}(GPU):");
    let kc = cfg.freqs.cpu.max_level();
    let kg = cfg.freqs.gpu.max_level();
    for (label, f, g) in [
        ("max freq", kc, kg),
        ("medium", kc / 2, kg / 2),
        ("floor", 0, 0),
    ] {
        let d = predictor.predict_pair_degradation(&cfg, &profiles[ci], f, &profiles[gi], g);
        let t = predictor.predict_pair_times(&cfg, &profiles[ci], f, &profiles[gi], g);
        let p = predictor.predict_power(Some((&profiles[ci], f)), Some((&profiles[gi], g)));
        println!(
            "  {label:<9} cpu: {:>6.1}s (+{:.0}%)   gpu: {:>6.1}s (+{:.0}%)   power {:>5.1} W",
            t.cpu,
            d.cpu * 100.0,
            t.gpu,
            d.gpu * 100.0,
            p
        );
    }
    println!();
    println!(
        "note: the bandwidth-only model cannot see LLC thrashing; the runtime's \
         O(N) probe corrects that (see perf_model::probe)"
    );
}
