//! Quickstart: schedule a small batch of OpenCL-like jobs on the simulated
//! integrated CPU-GPU package under a 15 W power cap.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use apu_sim::MachineConfig;
use kernels::section3_four;
use runtime::{CoScheduleRuntime, RuntimeConfig};

fn main() {
    // 1. A machine: the calibrated Ivy Bridge preset (4-core CPU +
    //    integrated GPU, shared LLC and DRAM, 16/10 DVFS levels).
    let machine = MachineConfig::ivy_bridge();

    // 2. A workload: the paper's four motivation programs.
    let workload = section3_four(&machine);
    println!("jobs: {:?}", workload.names());

    // 3. The runtime profiles the jobs, characterizes the co-run
    //    degradation space with the micro-benchmark, and builds the
    //    predictive model. (`fast` keeps this example snappy; use
    //    `RuntimeConfig::paper` for full fidelity.)
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = 15.0;
    let rt = CoScheduleRuntime::new(machine, workload.jobs, cfg);

    // 4. Schedule with the heuristic + local refinement (HCS+)...
    let schedule = rt.schedule_hcs_plus();
    println!("schedule: {schedule}");

    // 5. ...and execute on the simulator for the ground-truth makespan.
    let report = rt.execute_planned(&schedule);
    println!("makespan: {:.1}s", report.makespan_s);
    println!(
        "power: mean {:.1} W, peak {:.1} W (cap 15 W)",
        report.trace.mean_w(),
        report.trace.max_w()
    );
    for rec in &report.records {
        println!(
            "  {:<16} on {}: {:>6.1}s .. {:>6.1}s",
            rec.name, rec.device, rec.start_s, rec.end_s
        );
    }

    // 6. Compare against the random baseline and the lower bound.
    let random = rt.random_avg_makespan(0..5);
    let bound = rt.lower_bound();
    println!();
    println!(
        "random baseline: {:.1}s  ->  HCS+ speedup {:.0}%",
        random,
        (random / report.makespan_s - 1.0) * 100.0
    );
    println!("optimal-makespan lower bound: {:.1}s", bound.t_low_s);
}
