//! Online stream scenario: jobs arrive over time (a shared workstation's
//! submission queue) and the online HCS policy decides placement,
//! frequency, and co-runner at every arrival/completion — without knowing
//! the future.
//!
//! ```text
//! cargo run --release --example online_stream
//! ```

use apu_sim::{MachineConfig, NullGovernor};
use corun_core::{Arrival, HcsConfig, OnlinePolicy};
use kernels::{poisson, random_batch};
use runtime::{execute_online, full_report, CoScheduleRuntime, RuntimeConfig};

fn main() {
    let machine = MachineConfig::ivy_bridge();
    let workload = random_batch(&machine, 10, 77);
    let n = workload.len();
    println!("submission stream ({n} jobs): {:?}", workload.names());

    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = 15.0;
    let rt = CoScheduleRuntime::new(machine, workload.jobs, cfg);

    // Jobs arrive with a mean gap of 8 seconds.
    let arrivals: Vec<Arrival> = poisson(n, 8.0, 30.0, 4)
        .into_iter()
        .map(|a| Arrival {
            job: a.job,
            at_s: a.at_s,
        })
        .collect();
    for a in &arrivals {
        println!(
            "  t={:>5.1}s  job {} arrives",
            a.at_s,
            rt.jobs()[a.job].name
        );
    }

    let policy = OnlinePolicy::new(rt.model(), HcsConfig::with_cap(15.0));
    let mut gov = NullGovernor;
    let report = execute_online(
        rt.machine(),
        rt.jobs(),
        rt.model(),
        &policy,
        &arrivals,
        &mut gov,
        rt.machine().freqs.min_setting(),
    )
    .expect("online run");

    println!();
    println!("{}", full_report(&report, 64));

    // Flow time: the latency each submitter actually experienced.
    let mut flows: Vec<(String, f64)> = report
        .records
        .iter()
        .map(|r| {
            let at = arrivals.iter().find(|a| a.job == r.tag).unwrap().at_s;
            (r.name.clone(), r.end_s - at)
        })
        .collect();
    flows.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("worst flow times:");
    for (name, flow) in flows.iter().take(3) {
        println!("  {name:<20} {flow:>6.1}s");
    }
}
