//! End-to-end tour of the `corun-verify` diagnostics engine: one
//! deliberately broken artifact per error class, each linted and
//! rendered the way `corun lint` would.
//!
//! Run with `cargo run -p corun-verify --example lint_demo`.

use apu_sim::{Device, MachineConfig};
use corun_core::{Assignment, Schedule, SoloRun, TableModel};
use corun_verify::{apply_overrides, lint_machine, lint_schedule, lint_spec_full, Report};

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn show(report: &Report) {
    print!("{}", report.render_human());
}

/// Small synthetic model: four jobs, 4 CPU / 3 GPU levels; the pair
/// (job0, job1) interferes catastrophically, everything else is benign.
fn demo_model() -> TableModel {
    let names: Vec<String> = (0..4).map(|i| format!("job{i}")).collect();
    TableModel::build(
        names,
        4,
        3,
        4.0,
        |i, dev, f| {
            let dev_mult = if dev == Device::Cpu { 1.0 } else { 0.8 };
            (10.0 + 5.0 * i as f64) * dev_mult / (1.0 + 0.3 * f as f64)
        },
        |i, _dev, _f, j, _g| if i + j == 1 { 2.5 } else { 0.05 },
        |_i, dev, f| {
            let k = if dev == Device::Cpu { 4 } else { 3 };
            2.0 + 3.0 * (f as f64 + 1.0) / k as f64
        },
    )
}

fn main() {
    let model = demo_model();

    banner("SCH001/SCH005: duplicate + missing jobs, out-of-range level");
    let broken_structure = Schedule {
        cpu: vec![
            Assignment { job: 0, level: 3 },
            Assignment { job: 0, level: 99 },
        ],
        gpu: vec![Assignment { job: 1, level: 2 }],
        solo_tail: vec![],
    };
    show(&lint_schedule(&model, &broken_structure, Some(100.0), true));

    banner("SCH002: co-run pair the Co-Run Theorem rejects");
    let hostile_pair = Schedule {
        cpu: vec![Assignment { job: 0, level: 3 }],
        gpu: vec![Assignment { job: 1, level: 2 }],
        solo_tail: vec![
            SoloRun {
                job: 2,
                device: Device::Cpu,
                level: 3,
            },
            SoloRun {
                job: 3,
                device: Device::Gpu,
                level: 2,
            },
        ],
    };
    show(&lint_schedule(&model, &hostile_pair, None, true));

    banner("SCH003: frequency pair infeasible under a 5 W cap");
    let good_pairing = Schedule {
        cpu: vec![Assignment { job: 0, level: 3 }],
        gpu: vec![Assignment { job: 2, level: 2 }],
        solo_tail: vec![
            SoloRun {
                job: 1,
                device: Device::Cpu,
                level: 3,
            },
            SoloRun {
                job: 3,
                device: Device::Gpu,
                level: 2,
            },
        ],
    };
    show(&lint_schedule(&model, &good_pairing, Some(5.0), true));

    banner("SCH004: a reported makespan that beats the lower bound");
    show(&corun_verify::lint_run_report(
        &model,
        &good_pairing,
        Some(100.0),
        true,
        0.001,
    ));

    banner("CFG001-CFG005: broken machine configuration");
    let mut cfg = MachineConfig::ivy_bridge();
    cfg.memory.total_bw_gbps = -1.0;
    cfg.cpu.dyn_power_exp = 9.0;
    cfg.tick_s = -0.5;
    show(&lint_machine(&cfg));

    banner("CFG007: unknown and malformed config overrides");
    let mut cfg = MachineConfig::ivy_bridge();
    let diags = apply_overrides(&mut cfg, "cpu.no_such_knob = 1\ncpu.dyn_power_w = abc\n");
    show(&Report::from_diagnostics(diags));

    banner("SPC001-SPC006: broken workload spec");
    let (_lines, report) =
        lint_spec_full("lud xbad\nnosuchprog\nlud x100\nlud *500\nhotspot\nhotspot\n");
    show(&report);

    banner("clean inputs lint clean");
    show(&lint_machine(&MachineConfig::ivy_bridge()));
    let (_lines, report) = lint_spec_full("streamcluster\nlud x0.8 *3\n");
    show(&report);
}
