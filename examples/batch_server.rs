//! Batch-server scenario: a shared workstation receives a nightly batch of
//! heterogeneous jobs (multiple instances of the Rodinia-like programs with
//! varying input sizes) and must finish it as early as possible without
//! tripping the 15 W package budget.
//!
//! The example compares four operating modes on ground truth and prints a
//! simple Gantt chart of the winning schedule:
//!
//! * naive FIFO onto the GPU only (what a queue without placement logic does)
//! * the OS default (preference-ranked partition, CPU side time-shared)
//! * random placement with a reactive governor
//! * HCS+ (this paper)
//!
//! ```text
//! cargo run --release --example batch_server
//! ```

use apu_sim::{Bias, Device, MachineConfig};
use corun_core::{Assignment, Schedule};
use kernels::random_batch;
use runtime::{CoScheduleRuntime, RuntimeConfig};

fn main() {
    let machine = MachineConfig::ivy_bridge();
    let workload = random_batch(&machine, 12, 42);
    println!(
        "tonight's batch ({} jobs): {:?}",
        workload.len(),
        workload.names()
    );

    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = 15.0;
    let n = workload.len();
    let rt = CoScheduleRuntime::new(machine, workload.jobs, cfg);

    // Naive FIFO: everything on the GPU, in arrival order, max frequency,
    // reactive governor for the cap.
    let fifo = Schedule {
        cpu: vec![],
        gpu: (0..n)
            .map(|job| Assignment {
                job,
                level: rt.machine().freqs.gpu.max_level(),
            })
            .collect(),
        solo_tail: vec![],
    };
    let t_fifo = rt.execute_governed(&fifo, Bias::Gpu).makespan_s;

    let t_default = rt
        .execute_default(&rt.schedule_default(), Bias::Gpu)
        .makespan_s;
    let t_random = rt.random_avg_makespan(0..5);
    let hcs_plus = rt.schedule_hcs_plus();
    let report = rt.execute_planned(&hcs_plus);
    let t_hcs = report.makespan_s;

    println!();
    println!("GPU-only FIFO : {t_fifo:>7.1}s");
    println!("OS default    : {t_default:>7.1}s");
    println!("random (avg)  : {t_random:>7.1}s");
    println!(
        "HCS+          : {t_hcs:>7.1}s   <- {:.0}% faster than FIFO",
        (t_fifo / t_hcs - 1.0) * 100.0
    );

    // Gantt chart of the HCS+ run (one row per device, 60 columns).
    println!();
    println!("HCS+ timeline (makespan {t_hcs:.1}s):");
    let cols = 60.0;
    for device in Device::ALL {
        let mut line = vec![b'.'; cols as usize];
        let mut labels = Vec::new();
        for rec in report.records.iter().filter(|r| r.device == device) {
            let a = (rec.start_s / t_hcs * cols) as usize;
            let b = ((rec.end_s / t_hcs * cols) as usize).min(cols as usize);
            let ch = rec.name.bytes().next().unwrap_or(b'?');
            for c in line.iter_mut().take(b).skip(a) {
                *c = ch;
            }
            labels.push(format!("{}={}", ch as char, rec.name));
        }
        println!("  {device}: {}", String::from_utf8_lossy(&line));
    }
    println!("  (first letter of each job name marks its run window)");
}
