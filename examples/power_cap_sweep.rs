//! Power-cap sweep: how the achievable batch makespan degrades as the
//! package budget tightens, and how much co-scheduling buys at each cap.
//!
//! Sweeps the cap from 20 W down to 10 W on the 8-program batch and prints
//! makespan and energy for HCS+ versus the governed Default baseline.
//!
//! ```text
//! cargo run --release --example power_cap_sweep
//! ```

use apu_sim::{Bias, MachineConfig};
use kernels::rodinia8;
use runtime::{CoScheduleRuntime, RuntimeConfig};

fn main() {
    println!(
        "{:>6} {:>12} {:>12} {:>13} {:>13} {:>8}",
        "cap", "HCS+ (s)", "HCS+ E (J)", "Default (s)", "Default E (J)", "gain"
    );
    for cap in [20.0, 18.0, 16.0, 14.0, 12.0, 10.0] {
        let machine = MachineConfig::ivy_bridge();
        let workload = rodinia8(&machine);
        let mut cfg = RuntimeConfig::fast(&machine);
        cfg.cap_w = cap;
        let rt = CoScheduleRuntime::new(machine, workload.jobs, cfg);

        let hcs = rt.execute_planned(&rt.schedule_hcs_plus());
        let def = rt.execute_default(&rt.schedule_default(), Bias::Gpu);
        println!(
            "{:>5}W {:>12.1} {:>12.0} {:>13.1} {:>13.0} {:>7.0}%",
            cap,
            hcs.makespan_s,
            hcs.trace.energy_j(),
            def.makespan_s,
            def.trace.energy_j(),
            (def.makespan_s / hcs.makespan_s - 1.0) * 100.0
        );
    }
    println!();
    println!("tighter caps stretch makespans; co-scheduling holds its advantage across the range");
}
