//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Same surface, simpler machinery: strategies generate values from a
//! seeded PRNG and failing cases report the case number and seed, but there
//! is no shrinking. Supported: range and tuple strategies, `any::<T>()`,
//! `Just`, regex-literal string strategies over `[class]{m,n}` atoms,
//! `prop_map` / `prop_flat_map` / `prop_filter` / `prop_filter_map`,
//! `proptest::collection::vec`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and `prop_assert*!` / `prop_assume!`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Failure channel of a test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains it.
    Fail(String),
    /// `prop_assume!` rejected the generated input; try another.
    Reject,
}

impl From<String> for TestCaseError {
    fn from(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Boxed, clonable strategy (stand-in for `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> Option<S2::Value> {
        (self.f)(self.inner.generate(rng)?).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// --- primitive strategies ---------------------------------------------------

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "anything" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen()
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- regex-literal string strategies ----------------------------------------

/// `&str` literals act as regex-shaped string strategies. The shim supports
/// concatenations of atoms, where an atom is a literal character or a
/// `[...]` character class (ranges and escapes), optionally repeated with
/// `{m,n}`, `{m}`, `*`, `+`, or `?`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> Option<String> {
        Some(gen_from_pattern(self, rng))
    }
}

fn gen_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // one atom: a char class or a (possibly escaped) literal
        let atom: Vec<char> = if chars[i] == '[' {
            let mut cls = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                let c = unescape(&chars, &mut i);
                if i < chars.len() && chars[i] == '-' && i + 1 < chars.len() && chars[i + 1] != ']'
                {
                    i += 1; // consume '-'
                    let hi = unescape(&chars, &mut i);
                    for v in c as u32..=hi as u32 {
                        if let Some(ch) = char::from_u32(v) {
                            cls.push(ch);
                        }
                    }
                } else {
                    cls.push(c);
                }
            }
            i += 1; // consume ']'
            cls
        } else {
            vec![unescape(&chars, &mut i)]
        };
        // optional repetition suffix
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
            let close = close.expect("unclosed {} in pattern");
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("bad repeat lower bound"),
                    b.trim().parse::<usize>().expect("bad repeat upper bound"),
                ),
                None => {
                    let k = body.trim().parse::<usize>().expect("bad repeat count");
                    (k, k)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let suffix = chars[i];
            i += 1;
            match suffix {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(atom[rng.gen_range(0..atom.len())]);
        }
    }
    out
}

fn unescape(chars: &[char], i: &mut usize) -> char {
    let c = chars[*i];
    *i += 1;
    if c != '\\' {
        return c;
    }
    let e = chars[*i];
    *i += 1;
    match e {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

// --- collections ------------------------------------------------------------

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed length or a half-open range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let n = self.size.pick(rng);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }
}

// --- runner -----------------------------------------------------------------

/// How many times a strategy is re-sampled when filters reject, before the
/// case (not the test) is abandoned; and how many rejected cases in a row
/// fail the test outright.
const MAX_REJECTS: u32 = 4096;

/// Drive `body` over `config.cases` generated cases. Each case gets a
/// deterministic seed, so failures are reproducible and reported.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, body: F)
where
    F: Fn(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut rejects: u32 = 0;
    let mut case: u64 = 0;
    let mut executed: u32 = 0;
    while executed < config.cases {
        // Stable per-test seeding: same order every run.
        let seed = splitmix(hash_name(test_name) ^ case);
        let mut rng = StdRng::seed_from_u64(seed);
        case += 1;
        match body(&mut rng) {
            Ok(()) => {
                executed += 1;
                rejects = 0;
            }
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > MAX_REJECTS {
                    panic!(
                        "proptest shim: `{test_name}` rejected {MAX_REJECTS} \
                         inputs in a row (over-constrained prop_assume/filter)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest shim: `{test_name}` failed at case {case} (seed {seed:#x}):\n{msg}"
                );
            }
        }
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Generate from `strategy`, retrying through filter rejections.
pub fn sample<S: Strategy>(strategy: &S, rng: &mut StdRng) -> Result<S::Value, TestCaseError> {
    for _ in 0..MAX_REJECTS {
        if let Some(v) = strategy.generate(rng) {
            return Ok(v);
        }
    }
    Err(TestCaseError::Reject)
}

// --- macros -----------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident (
        $( $arg:pat in $strat:expr ),+ $(,)?
    ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |__rng| {
                    $( let $arg = $crate::sample(&($strat), __rng)?; )+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    __result
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)*), a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0.0f64..1.0, 5u64..9)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..9).contains(&b));
        }

        #[test]
        fn combinators_compose(v in collection::vec(0i32..100, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn string_patterns(s in "[a-c]{2,4}", t in "x[0-9]{1}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert_eq!(t.len(), 2);
            prop_assert!(t.starts_with('x'));
        }

        #[test]
        fn assume_rejects_cleanly(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn map_filter_flat_map() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = (1usize..5)
            .prop_flat_map(|n| collection::vec(0.0f64..1.0, n))
            .prop_map(|v| v.len())
            .prop_filter("nonempty", |&n| n > 0);
        for _ in 0..100 {
            let n = crate::sample(&s, &mut rng).unwrap();
            assert!((1..5).contains(&n));
        }
    }
}
