//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` as forward-looking
//! decoration only — all persistence is hand-rolled text (see
//! `perf-model/src/persist.rs`). The shim `serde` crate provides blanket
//! trait impls, so an empty expansion keeps every bound satisfied without
//! network access to crates.io.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
