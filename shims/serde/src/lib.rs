//! Offline shim for `serde`.
//!
//! The vendored registry is unreachable in this build environment, and the
//! workspace only uses serde as derive decoration (persistence is a
//! hand-rolled text format). This crate keeps the source compatible with
//! real serde: the traits exist (as markers with blanket impls) and the
//! derive macros exist (as no-ops), so swapping the real crates back in is
//! a one-line Cargo.toml change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<T: ?Sized> Deserialize<'_> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
