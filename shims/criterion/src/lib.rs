//! Offline shim for the subset of `criterion` the bench crate uses:
//! `Criterion::{bench_function, benchmark_group}`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a fixed warmup + timed batch (median of a few batches)
//! printed to stdout — enough to compare orders of magnitude offline, with
//! no statistics, plotting, or CLI parsing.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Passed to bench closures; `iter` times the routine.
pub struct Bencher {
    /// (total elapsed, iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm up and estimate a batch size targeting ~50 ms of work.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), batch as u64));
    }
}

fn report(label: &str, result: Option<(Duration, u64)>) {
    match result {
        Some((total, iters)) if iters > 0 => {
            let per = total.as_secs_f64() / iters as f64;
            println!("{label:<44} {:>12} /iter  ({iters} iters)", human_time(per));
        }
        _ => println!("{label:<44} (no measurement)"),
    }
}

fn human_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Group of related benchmarks (subset of `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher { result: None };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), b.result);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(&format!("{}/{}", self.name, name.into()), b.result);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Top-level bench driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(name, b.result);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_sum(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut g = c.benchmark_group("grouped");
        for n in [10u64, 100] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).product::<u64>());
            });
        }
        g.finish();
    }

    criterion_group!(benches, bench_sum);

    #[test]
    fn harness_runs() {
        benches();
    }
}
