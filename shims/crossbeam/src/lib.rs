//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with crossbeam's closure signature
//! (`spawn(|scope| ...)`), implemented on `std::thread::scope`.

pub mod thread {
    /// Scope handle passed to [`scope`] closures; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle mirroring `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope again (crossbeam's
        /// signature) so workers could spawn sub-workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing local data into threads is
    /// allowed; all spawned threads are joined before returning.
    ///
    /// `std::thread::scope` propagates worker panics directly, so the
    /// `Err` arm of the crossbeam-compatible `Result` is never produced;
    /// callers' `.expect("scope")` is preserved verbatim.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let sums: Vec<u64> = thread::scope(|s| {
            data.chunks(2)
                .map(|ch| s.spawn(move |_| ch.iter().sum::<u64>()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        })
        .expect("scope");
        assert_eq!(sums, vec![3, 7, 11]);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n: u64 = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41u64).join().expect("inner") + 1)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
