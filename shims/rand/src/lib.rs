//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Implements `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom::shuffle` on top of xoshiro256++
//! seeded through splitmix64. Deterministic for a given seed, which is all
//! the callers (seeded workload generators, baseline schedulers, annealing)
//! rely on; statistical quality is far beyond what they need.

use std::ops::{Range, RangeInclusive};

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values producible by `Rng::gen` (stand-in for `Standard`-distribution
/// sampling).
pub trait StandardSample {
    fn sample(rng: &mut impl RngCore) -> Self;
}

/// Ranges usable with `Rng::gen_range` (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    fn sample_in(self, rng: &mut impl RngCore) -> T;
}

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

impl StandardSample for f64 {
    fn sample(rng: &mut impl RngCore) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample(rng: &mut impl RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample(rng: &mut impl RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample(rng: &mut impl RngCore) -> usize {
        rng.next_u64() as usize
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_ranges!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ PRNG (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 seeding, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Process-global generator (stand-in for `rand::thread_rng`), seeded from
/// the system clock once per call site invocation.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0x5eed, |d| d.as_nanos() as u64);
    rngs::StdRng::seed_from_u64(nanos)
}

pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn shuffle(&mut self, rng: &mut impl RngCore);
        fn choose<'a>(&'a self, rng: &mut impl RngCore) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut impl RngCore) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a>(&'a self, rng: &mut impl RngCore) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = r.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-2.0..4.0f64);
            assert!((-2.0..4.0).contains(&f));
            let k = r.gen_range(1..=5u8);
            assert!((1..=5).contains(&k));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not stay in order");
    }
}
